// Loss functions. Each returns the scalar loss and writes the gradient
// w.r.t. the prediction (normalized by batch size) for the backward pass.
#pragma once

#include "tensor/tensor.hpp"

namespace fairdms::nn {

using tensor::Tensor;

struct LossResult {
  double value = 0.0;
  Tensor grad;  // dL/dpred, same shape as pred
};

/// Mean squared error over all elements.
LossResult mse_loss(const Tensor& pred, const Tensor& target);

/// Mean absolute error (L1) over all elements.
LossResult l1_loss(const Tensor& pred, const Tensor& target);

/// 2 - 2*cos(a, b) per row, averaged over the batch; gradient w.r.t. `a`
/// only (b treated as constant — BYOL's stop-gradient on the target branch).
LossResult byol_loss(const Tensor& online, const Tensor& target);

/// NT-Xent contrastive loss (SimCLR). `z` holds 2B rows: row i and row i+B
/// are the two augmented views of sample i. Returns loss and dL/dz.
LossResult nt_xent_loss(const Tensor& z, float temperature = 0.5f);

}  // namespace fairdms::nn
