#include "nn/loss.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace fairdms::nn {

LossResult mse_loss(const Tensor& pred, const Tensor& target) {
  FAIRDMS_CHECK(pred.numel() == target.numel(), "mse_loss: size mismatch ",
                pred.shape_str(), " vs ", target.shape_str());
  LossResult out;
  out.grad = Tensor(pred.shape());
  const float* pp = pred.data();
  const float* pt = target.data();
  float* pg = out.grad.data();
  const auto n = static_cast<double>(pred.numel());
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    sum += d * d;
    pg[i] = static_cast<float>(2.0 * d / n);
  }
  out.value = sum / n;
  return out;
}

LossResult l1_loss(const Tensor& pred, const Tensor& target) {
  FAIRDMS_CHECK(pred.numel() == target.numel(), "l1_loss: size mismatch");
  LossResult out;
  out.grad = Tensor(pred.shape());
  const float* pp = pred.data();
  const float* pt = target.data();
  float* pg = out.grad.data();
  const auto n = static_cast<double>(pred.numel());
  double sum = 0.0;
  for (std::size_t i = 0; i < pred.numel(); ++i) {
    const double d = static_cast<double>(pp[i]) - pt[i];
    sum += std::fabs(d);
    pg[i] = static_cast<float>((d > 0.0 ? 1.0 : (d < 0.0 ? -1.0 : 0.0)) / n);
  }
  out.value = sum / n;
  return out;
}

LossResult byol_loss(const Tensor& online, const Tensor& target) {
  FAIRDMS_CHECK(online.rank() == 2 && target.rank() == 2 &&
                    online.dim(0) == target.dim(0) &&
                    online.dim(1) == target.dim(1),
                "byol_loss: shape mismatch ", online.shape_str(), " vs ",
                target.shape_str());
  const std::size_t batch = online.dim(0);
  const std::size_t dim = online.dim(1);
  LossResult out;
  out.grad = Tensor(online.shape());
  const float* po = online.data();
  const float* pt = target.data();
  float* pg = out.grad.data();
  double total = 0.0;
  constexpr double kEps = 1e-12;
  for (std::size_t i = 0; i < batch; ++i) {
    const float* o = po + i * dim;
    const float* t = pt + i * dim;
    double no = 0.0, nt = 0.0, ot = 0.0;
    for (std::size_t j = 0; j < dim; ++j) {
      no += static_cast<double>(o[j]) * o[j];
      nt += static_cast<double>(t[j]) * t[j];
      ot += static_cast<double>(o[j]) * t[j];
    }
    no = std::sqrt(no) + kEps;
    nt = std::sqrt(nt) + kEps;
    const double cos = ot / (no * nt);
    total += 2.0 - 2.0 * cos;
    // d/do_j [ot / (|o||t|)] = t_j/(|o||t|) - cos * o_j/|o|^2
    const double inv_bn = 1.0 / static_cast<double>(batch);
    for (std::size_t j = 0; j < dim; ++j) {
      const double dcos =
          t[j] / (no * nt) - cos * o[j] / (no * no);
      pg[i * dim + j] = static_cast<float>(-2.0 * dcos * inv_bn);
    }
  }
  out.value = total / static_cast<double>(batch);
  return out;
}

LossResult nt_xent_loss(const Tensor& z, float temperature) {
  FAIRDMS_CHECK(z.rank() == 2 && z.dim(0) % 2 == 0,
                "nt_xent_loss: expected [2B, D], got ", z.shape_str());
  const std::size_t n = z.dim(0);  // 2B rows
  const std::size_t d = z.dim(1);
  const std::size_t b = n / 2;
  const double tau = static_cast<double>(temperature);
  constexpr double kEps = 1e-12;

  // Row-normalize (cosine similarity space); remember norms for backprop.
  std::vector<double> norms(n);
  std::vector<double> zn(n * d);
  const float* pz = z.data();
  for (std::size_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      s += static_cast<double>(pz[i * d + j]) * pz[i * d + j];
    }
    norms[i] = std::sqrt(s) + kEps;
    for (std::size_t j = 0; j < d; ++j) {
      zn[i * d + j] = pz[i * d + j] / norms[i];
    }
  }

  // sim[i][k] = zn_i . zn_k / tau  (diagonal masked out).
  std::vector<double> sim(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = 0; k < n; ++k) {
      if (i == k) continue;
      double s = 0.0;
      for (std::size_t j = 0; j < d; ++j) s += zn[i * d + j] * zn[k * d + j];
      sim[i * n + k] = s / tau;
    }
  }

  // Softmax cross-entropy per row with the positive at pair(i).
  // grad w.r.t. normalized embeddings first, then chain through the
  // normalization.
  std::vector<double> gzn(n * d, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t pos = i < b ? i + b : i - b;
    double max_logit = -1e300;
    for (std::size_t k = 0; k < n; ++k) {
      if (k != i) max_logit = std::max(max_logit, sim[i * n + k]);
    }
    double denom = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      if (k != i) denom += std::exp(sim[i * n + k] - max_logit);
    }
    const double log_denom = std::log(denom) + max_logit;
    total += log_denom - sim[i * n + pos];
    for (std::size_t k = 0; k < n; ++k) {
      if (k == i) continue;
      const double p = std::exp(sim[i * n + k] - log_denom);
      const double coeff = (p - (k == pos ? 1.0 : 0.0)) / (tau * n);
      // d sim[i][k] / d zn_i = zn_k  and  / d zn_k = zn_i
      for (std::size_t j = 0; j < d; ++j) {
        gzn[i * d + j] += coeff * zn[k * d + j];
        gzn[k * d + j] += coeff * zn[i * d + j];
      }
    }
  }

  LossResult out;
  out.value = total / static_cast<double>(n);
  out.grad = Tensor(z.shape());
  float* pg = out.grad.data();
  // d zn / d z: (I - zn zn^T) / |z|
  for (std::size_t i = 0; i < n; ++i) {
    double dot_g = 0.0;
    for (std::size_t j = 0; j < d; ++j) dot_g += gzn[i * d + j] * zn[i * d + j];
    for (std::size_t j = 0; j < d; ++j) {
      pg[i * d + j] = static_cast<float>(
          (gzn[i * d + j] - dot_g * zn[i * d + j]) / norms[i]);
    }
  }
  return out;
}

}  // namespace fairdms::nn
