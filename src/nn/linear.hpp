// Fully connected layer: y = x W^T + b, x: [N, in], W: [out, in], b: [out].
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace fairdms::nn {

class Linear final : public Layer {
 public:
  /// Kaiming-uniform initialization scaled for the fan-in.
  Linear(std::size_t in_features, std::size_t out_features, util::Rng& rng);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const { return in_; }
  [[nodiscard]] std::size_t out_features() const { return out_; }
  [[nodiscard]] const Tensor& weight() const { return weight_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Tensor weight_;       // [out, in]
  Tensor bias_;         // [out]
  Tensor grad_weight_;  // [out, in]
  Tensor grad_bias_;    // [out]
  Tensor cached_input_; // [N, in] from last kTrain forward
};

}  // namespace fairdms::nn
