#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>

#include "util/check.hpp"

namespace fairdms::nn {

namespace {

constexpr std::uint32_t kMagic = 0x46444D53;  // "FDMS"
constexpr std::uint32_t kVersion = 1;

void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint32_t read_u32(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  FAIRDMS_CHECK(pos + 4 <= in.size(), "model blob truncated (u32)");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{in[pos++]} << (8 * i);
  return v;
}

std::uint64_t read_u64(const std::vector<std::uint8_t>& in, std::size_t& pos) {
  FAIRDMS_CHECK(pos + 8 <= in.size(), "model blob truncated (u64)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{in[pos++]} << (8 * i);
  return v;
}

/// FNV-1a over a byte range — cheap corruption detection.
std::uint64_t fnv1a(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001B3ull;
  }
  return h;
}

}  // namespace

std::vector<std::uint8_t> save_parameters(Sequential& model) {
  auto params = model.params();
  std::vector<std::uint8_t> out;
  append_u32(out, kMagic);
  append_u32(out, kVersion);
  append_u64(out, params.size());
  for (Tensor* p : params) {
    append_u64(out, p->rank());
    for (std::size_t a = 0; a < p->rank(); ++a) append_u64(out, p->dim(a));
    const auto bytes = p->numel() * sizeof(float);
    const std::size_t offset = out.size();
    out.resize(offset + bytes);
    // Empty tensors have a null data(), which memcpy must never see (UB).
    if (bytes != 0) std::memcpy(out.data() + offset, p->data(), bytes);
  }
  append_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

void load_parameters(Sequential& model,
                     const std::vector<std::uint8_t>& blob) {
  FAIRDMS_CHECK(blob.size() >= 24, "model blob too small");
  const std::size_t payload = blob.size() - 8;
  std::size_t tail = payload;
  const std::uint64_t stored_hash = read_u64(blob, tail);
  FAIRDMS_CHECK(fnv1a(blob.data(), payload) == stored_hash,
                "model blob checksum mismatch");

  std::size_t pos = 0;
  FAIRDMS_CHECK(read_u32(blob, pos) == kMagic, "model blob: bad magic");
  FAIRDMS_CHECK(read_u32(blob, pos) == kVersion, "model blob: bad version");
  const std::uint64_t count = read_u64(blob, pos);
  auto params = model.params();
  FAIRDMS_CHECK(params.size() == count, "model blob has ", count,
                " tensors, model expects ", params.size());
  for (Tensor* p : params) {
    const std::uint64_t rank = read_u64(blob, pos);
    FAIRDMS_CHECK(rank == p->rank(), "model blob: rank mismatch");
    std::size_t numel = 1;
    for (std::uint64_t a = 0; a < rank; ++a) {
      const std::uint64_t d = read_u64(blob, pos);
      FAIRDMS_CHECK(d == p->dim(static_cast<std::size_t>(a)),
                    "model blob: dim mismatch");
      numel *= d;
    }
    const auto bytes = numel * sizeof(float);
    FAIRDMS_CHECK(pos + bytes <= payload, "model blob truncated (data)");
    if (bytes != 0) std::memcpy(p->data(), blob.data() + pos, bytes);
    pos += bytes;
  }
  FAIRDMS_CHECK(pos == payload, "model blob has trailing bytes");
}

void save_parameters_file(Sequential& model, const std::string& path) {
  const auto blob = save_parameters(model);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  FAIRDMS_CHECK(out.good(), "cannot open for write: ", path);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  FAIRDMS_CHECK(out.good(), "write failed: ", path);
}

void load_parameters_file(Sequential& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  FAIRDMS_CHECK(in.good(), "cannot open for read: ", path);
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::uint8_t> blob(size);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(size));
  FAIRDMS_CHECK(in.good(), "read failed: ", path);
  load_parameters(model, blob);
}

}  // namespace fairdms::nn
