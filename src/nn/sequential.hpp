// Ordered container of layers; the model type used throughout fairDMS.
#pragma once

#include <memory>

#include "nn/layer.hpp"

namespace fairdms::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  /// Append a layer; returns a reference for chained construction.
  Sequential& add(std::unique_ptr<Layer> layer);

  /// Emplace-construct a layer of type L.
  template <typename L, typename... Args>
  Sequential& emplace(Args&&... args) {
    return add(std::make_unique<L>(std::forward<Args>(args)...));
  }

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  [[nodiscard]] std::string name() const override { return "Sequential"; }

  [[nodiscard]] std::size_t layer_count() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(std::size_t i) { return *layers_.at(i); }

  /// Total number of learnable scalars.
  [[nodiscard]] std::size_t parameter_count();

  /// Copies parameter values from another model with identical architecture.
  void copy_parameters_from(Sequential& other);

  /// out = tau * other + (1 - tau) * out  (EMA update, used by BYOL target).
  void ema_update_from(Sequential& other, float tau);

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace fairdms::nn
