#include "nn/sequential.hpp"

#include "util/check.hpp"

namespace fairdms::nn {

Sequential& Sequential::add(std::unique_ptr<Layer> layer) {
  FAIRDMS_CHECK(layer != nullptr, "Sequential::add(nullptr)");
  layers_.push_back(std::move(layer));
  return *this;
}

Tensor Sequential::forward(const Tensor& x, Mode mode) {
  Tensor out = x;
  for (auto& layer : layers_) out = layer->forward(out, mode);
  return out;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor grad = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    grad = (*it)->backward(grad);
  }
  return grad;
}

std::vector<Tensor*> Sequential::params() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* p : layer->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::grads() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_) {
    for (Tensor* g : layer->grads()) out.push_back(g);
  }
  return out;
}

std::size_t Sequential::parameter_count() {
  std::size_t n = 0;
  for (Tensor* p : params()) n += p->numel();
  return n;
}

void Sequential::copy_parameters_from(Sequential& other) {
  auto dst = params();
  auto src = other.params();
  FAIRDMS_CHECK(dst.size() == src.size(),
                "copy_parameters_from: architecture mismatch (",
                dst.size(), " vs ", src.size(), " tensors)");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    FAIRDMS_CHECK(dst[i]->numel() == src[i]->numel(),
                  "copy_parameters_from: tensor ", i, " size mismatch");
    *dst[i] = *src[i];
  }
}

void Sequential::ema_update_from(Sequential& other, float tau) {
  auto dst = params();
  auto src = other.params();
  FAIRDMS_CHECK(dst.size() == src.size(),
                "ema_update_from: architecture mismatch");
  for (std::size_t i = 0; i < dst.size(); ++i) {
    Tensor& d = *dst[i];
    const Tensor& s = *src[i];
    FAIRDMS_CHECK(d.numel() == s.numel(), "ema tensor size mismatch");
    float* pd = d.data();
    const float* ps = s.data();
    for (std::size_t j = 0; j < d.numel(); ++j) {
      pd[j] = (1.0f - tau) * pd[j] + tau * ps[j];
    }
  }
}

}  // namespace fairdms::nn
