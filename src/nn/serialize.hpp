// Model parameter (de)serialization.
//
// The fairMS model Zoo stores models as opaque byte blobs inside the document
// store; this is the blob format. It captures parameter values only — the
// architecture is reconstructed by the model factory and must match.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/sequential.hpp"

namespace fairdms::nn {

/// Serializes every parameter tensor (in model order) into a versioned,
/// checksummed byte blob.
std::vector<std::uint8_t> save_parameters(Sequential& model);

/// Restores parameters from `blob` into `model`. Aborts on format, shape, or
/// checksum mismatch.
void load_parameters(Sequential& model, const std::vector<std::uint8_t>& blob);

/// File convenience wrappers.
void save_parameters_file(Sequential& model, const std::string& path);
void load_parameters_file(Sequential& model, const std::string& path);

}  // namespace fairdms::nn
