#include "nn/upsample.hpp"

#include "util/check.hpp"

namespace fairdms::nn {

Tensor Upsample2d::forward(const Tensor& x, Mode mode) {
  FAIRDMS_CHECK(x.rank() == 4, "Upsample2d expects [N,C,H,W], got ",
                x.shape_str());
  if (mode == Mode::kTrain) input_shape_ = x.shape();
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = h * factor_, ow = w * factor_;
  Tensor y({n, c, oh, ow});
  const float* px = x.data();
  float* py = y.data();
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* in_plane = px + i * h * w;
    float* out_plane = py + i * oh * ow;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      const float* in_row = in_plane + (oy / factor_) * w;
      for (std::size_t ox = 0; ox < ow; ++ox) {
        out_plane[oy * ow + ox] = in_row[ox / factor_];
      }
    }
  }
  return y;
}

Tensor Upsample2d::backward(const Tensor& grad_out) {
  FAIRDMS_CHECK(!input_shape_.empty(), "Upsample2d::backward before forward");
  const std::size_t n = input_shape_[0], c = input_shape_[1],
                    h = input_shape_[2], w = input_shape_[3];
  const std::size_t oh = h * factor_, ow = w * factor_;
  FAIRDMS_CHECK(grad_out.numel() == n * c * oh * ow,
                "Upsample2d: grad size mismatch");
  Tensor gx(input_shape_);
  const float* pg = grad_out.data();
  float* pgx = gx.data();
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* g_plane = pg + i * oh * ow;
    float* gx_plane = pgx + i * h * w;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      float* gx_row = gx_plane + (oy / factor_) * w;
      for (std::size_t ox = 0; ox < ow; ++ox) {
        gx_row[ox / factor_] += g_plane[oy * ow + ox];
      }
    }
  }
  return gx;
}

}  // namespace fairdms::nn
