#include "nn/activations.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fairdms::nn {

Tensor ReLU::forward(const Tensor& x, Mode mode) {
  if (mode == Mode::kTrain) cached_input_ = x;
  Tensor y = x;
  for (float& v : y.flat()) v = v > 0.0f ? v : 0.0f;
  return y;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  FAIRDMS_CHECK(!cached_input_.empty(), "ReLU::backward before forward");
  Tensor gx = grad_out;
  const float* in = cached_input_.data();
  float* g = gx.data();
  for (std::size_t i = 0; i < gx.numel(); ++i) {
    if (in[i] <= 0.0f) g[i] = 0.0f;
  }
  return gx;
}

Tensor LeakyReLU::forward(const Tensor& x, Mode mode) {
  if (mode == Mode::kTrain) cached_input_ = x;
  Tensor y = x;
  for (float& v : y.flat()) v = v > 0.0f ? v : slope_ * v;
  return y;
}

Tensor LeakyReLU::backward(const Tensor& grad_out) {
  FAIRDMS_CHECK(!cached_input_.empty(), "LeakyReLU::backward before forward");
  Tensor gx = grad_out;
  const float* in = cached_input_.data();
  float* g = gx.data();
  for (std::size_t i = 0; i < gx.numel(); ++i) {
    if (in[i] <= 0.0f) g[i] *= slope_;
  }
  return gx;
}

Tensor Sigmoid::forward(const Tensor& x, Mode mode) {
  Tensor y = x;
  for (float& v : y.flat()) v = 1.0f / (1.0f + std::exp(-v));
  if (mode == Mode::kTrain) cached_output_ = y;
  return y;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  FAIRDMS_CHECK(!cached_output_.empty(), "Sigmoid::backward before forward");
  Tensor gx = grad_out;
  const float* out = cached_output_.data();
  float* g = gx.data();
  for (std::size_t i = 0; i < gx.numel(); ++i) {
    g[i] *= out[i] * (1.0f - out[i]);
  }
  return gx;
}

Tensor Tanh::forward(const Tensor& x, Mode mode) {
  Tensor y = x;
  for (float& v : y.flat()) v = std::tanh(v);
  if (mode == Mode::kTrain) cached_output_ = y;
  return y;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  FAIRDMS_CHECK(!cached_output_.empty(), "Tanh::backward before forward");
  Tensor gx = grad_out;
  const float* out = cached_output_.data();
  float* g = gx.data();
  for (std::size_t i = 0; i < gx.numel(); ++i) {
    g[i] *= 1.0f - out[i] * out[i];
  }
  return gx;
}

}  // namespace fairdms::nn
