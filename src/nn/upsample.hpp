// Nearest-neighbour 2x upsampling; decoder-side counterpart to pooling.
#pragma once

#include "nn/layer.hpp"

namespace fairdms::nn {

class Upsample2d final : public Layer {
 public:
  explicit Upsample2d(std::size_t factor = 2) : factor_(factor) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Upsample2d"; }

 private:
  std::size_t factor_;
  std::vector<std::size_t> input_shape_;
};

}  // namespace fairdms::nn
