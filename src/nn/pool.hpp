// Max and average pooling over [N, C, H, W] inputs.
#pragma once

#include <cstdint>

#include "nn/layer.hpp"

namespace fairdms::nn {

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t kernel, std::size_t stride = 0)
      : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "MaxPool2d"; }

 private:
  std::size_t kernel_;
  std::size_t stride_;
  std::vector<std::size_t> input_shape_;
  std::vector<std::uint32_t> argmax_;  // flat input index per output element
};

class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::size_t kernel, std::size_t stride = 0)
      : kernel_(kernel), stride_(stride == 0 ? kernel : stride) {}

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "AvgPool2d"; }

 private:
  std::size_t kernel_;
  std::size_t stride_;
  std::vector<std::size_t> input_shape_;
};

}  // namespace fairdms::nn
