// Pointwise activation layers: ReLU, LeakyReLU, Sigmoid, Tanh.
#pragma once

#include "nn/layer.hpp"

namespace fairdms::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_input_;
};

class LeakyReLU final : public Layer {
 public:
  explicit LeakyReLU(float negative_slope = 0.01f) : slope_(negative_slope) {}
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "LeakyReLU"; }

 private:
  float slope_;
  Tensor cached_input_;
};

class Sigmoid final : public Layer {
 public:
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Sigmoid"; }

 private:
  Tensor cached_output_;
};

class Tanh final : public Layer {
 public:
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Tanh"; }

 private:
  Tensor cached_output_;
};

}  // namespace fairdms::nn
