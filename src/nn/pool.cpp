#include "nn/pool.hpp"

#include <limits>

#include "util/check.hpp"

namespace fairdms::nn {

namespace {
std::size_t pooled_size(std::size_t in, std::size_t kernel,
                        std::size_t stride) {
  FAIRDMS_CHECK(in >= kernel, "pool kernel larger than input: ", in, " < ",
                kernel);
  return (in - kernel) / stride + 1;
}
}  // namespace

Tensor MaxPool2d::forward(const Tensor& x, Mode mode) {
  FAIRDMS_CHECK(x.rank() == 4, "MaxPool2d expects [N,C,H,W], got ",
                x.shape_str());
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = pooled_size(h, kernel_, stride_);
  const std::size_t ow = pooled_size(w, kernel_, stride_);
  Tensor y({n, c, oh, ow});
  const bool keep = mode == Mode::kTrain;
  if (keep) {
    input_shape_ = x.shape();
    argmax_.assign(y.numel(), 0);
  }
  const float* px = x.data();
  float* py = y.data();
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* plane = px + i * h * w;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
        float best = -std::numeric_limits<float>::infinity();
        std::size_t best_idx = 0;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          for (std::size_t kx = 0; kx < kernel_; ++kx) {
            const std::size_t idx =
                (oy * stride_ + ky) * w + (ox * stride_ + kx);
            if (plane[idx] > best) {
              best = plane[idx];
              best_idx = i * h * w + idx;
            }
          }
        }
        py[out_idx] = best;
        if (keep) argmax_[out_idx] = static_cast<std::uint32_t>(best_idx);
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  FAIRDMS_CHECK(!argmax_.empty(), "MaxPool2d::backward before forward");
  FAIRDMS_CHECK(grad_out.numel() == argmax_.size(),
                "MaxPool2d: grad size mismatch");
  Tensor gx(input_shape_);
  float* pgx = gx.data();
  const float* pg = grad_out.data();
  for (std::size_t i = 0; i < argmax_.size(); ++i) {
    pgx[argmax_[i]] += pg[i];
  }
  return gx;
}

Tensor AvgPool2d::forward(const Tensor& x, Mode mode) {
  FAIRDMS_CHECK(x.rank() == 4, "AvgPool2d expects [N,C,H,W], got ",
                x.shape_str());
  const std::size_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::size_t oh = pooled_size(h, kernel_, stride_);
  const std::size_t ow = pooled_size(w, kernel_, stride_);
  if (mode == Mode::kTrain) input_shape_ = x.shape();
  Tensor y({n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  const float* px = x.data();
  float* py = y.data();
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n * c; ++i) {
    const float* plane = px + i * h * w;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
        float sum = 0.0f;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          for (std::size_t kx = 0; kx < kernel_; ++kx) {
            sum += plane[(oy * stride_ + ky) * w + (ox * stride_ + kx)];
          }
        }
        py[out_idx] = sum * inv;
      }
    }
  }
  return y;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  FAIRDMS_CHECK(!input_shape_.empty(), "AvgPool2d::backward before forward");
  const std::size_t n = input_shape_[0], c = input_shape_[1],
                    h = input_shape_[2], w = input_shape_[3];
  const std::size_t oh = pooled_size(h, kernel_, stride_);
  const std::size_t ow = pooled_size(w, kernel_, stride_);
  FAIRDMS_CHECK(grad_out.numel() == n * c * oh * ow,
                "AvgPool2d: grad size mismatch");
  Tensor gx(input_shape_);
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  float* pgx = gx.data();
  const float* pg = grad_out.data();
  std::size_t out_idx = 0;
  for (std::size_t i = 0; i < n * c; ++i) {
    float* plane = pgx + i * h * w;
    for (std::size_t oy = 0; oy < oh; ++oy) {
      for (std::size_t ox = 0; ox < ow; ++ox, ++out_idx) {
        const float g = pg[out_idx] * inv;
        for (std::size_t ky = 0; ky < kernel_; ++ky) {
          for (std::size_t kx = 0; kx < kernel_; ++kx) {
            plane[(oy * stride_ + ky) * w + (ox * stride_ + kx)] += g;
          }
        }
      }
    }
  }
  return gx;
}

}  // namespace fairdms::nn
