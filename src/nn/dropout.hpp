// Inverted dropout. Active in kTrain and kMcSample modes — the latter is what
// makes MC-dropout uncertainty quantification (paper Fig. 2) possible without
// touching model weights.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace fairdms::nn {

class Dropout final : public Layer {
 public:
  Dropout(float p, util::Rng& rng);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Dropout"; }

  [[nodiscard]] float probability() const { return p_; }

 private:
  float p_;
  util::Rng* rng_;  // non-owning; lifetime managed by the model owner
  Tensor mask_;
};

}  // namespace fairdms::nn
