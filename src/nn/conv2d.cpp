#include "nn/conv2d.hpp"

#include <cmath>
#include <cstring>

#include "util/check.hpp"
#include "util/mutex.hpp"
#include "util/thread_pool.hpp"

namespace fairdms::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, util::Rng& rng, std::size_t stride,
               std::size_t padding)
    : in_c_(in_channels),
      out_c_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weight_({out_channels, in_channels * kernel * kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels * kernel * kernel}),
      grad_bias_({out_channels}) {
  FAIRDMS_CHECK(kernel >= 1 && stride >= 1, "Conv2d: bad kernel/stride");
  const auto fan_in = static_cast<float>(in_channels * kernel * kernel);
  const float bound = std::sqrt(6.0f / fan_in);
  weight_ = Tensor::rand_uniform(weight_.shape(), rng, -bound, bound);
}

void Conv2d::im2col(const float* img, std::size_t h, std::size_t w,
                    float* cols) const {
  const std::size_t oh = out_size(h);
  const std::size_t ow = out_size(w);
  const std::size_t plane = h * w;
  std::size_t row = 0;
  for (std::size_t c = 0; c < in_c_; ++c) {
    for (std::size_t ky = 0; ky < kernel_; ++ky) {
      for (std::size_t kx = 0; kx < kernel_; ++kx, ++row) {
        float* dst = cols + row * (oh * ow);
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
              static_cast<std::ptrdiff_t>(padding_);
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                static_cast<std::ptrdiff_t>(padding_);
            const bool inside = iy >= 0 && iy < static_cast<std::ptrdiff_t>(h) &&
                                ix >= 0 && ix < static_cast<std::ptrdiff_t>(w);
            dst[oy * ow + ox] =
                inside ? img[c * plane +
                             static_cast<std::size_t>(iy) * w +
                             static_cast<std::size_t>(ix)]
                       : 0.0f;
          }
        }
      }
    }
  }
}

void Conv2d::col2im(const float* cols, std::size_t h, std::size_t w,
                    float* img) const {
  const std::size_t oh = out_size(h);
  const std::size_t ow = out_size(w);
  const std::size_t plane = h * w;
  std::size_t row = 0;
  for (std::size_t c = 0; c < in_c_; ++c) {
    for (std::size_t ky = 0; ky < kernel_; ++ky) {
      for (std::size_t kx = 0; kx < kernel_; ++kx, ++row) {
        const float* src = cols + row * (oh * ow);
        for (std::size_t oy = 0; oy < oh; ++oy) {
          const std::ptrdiff_t iy =
              static_cast<std::ptrdiff_t>(oy * stride_ + ky) -
              static_cast<std::ptrdiff_t>(padding_);
          if (iy < 0 || iy >= static_cast<std::ptrdiff_t>(h)) continue;
          for (std::size_t ox = 0; ox < ow; ++ox) {
            const std::ptrdiff_t ix =
                static_cast<std::ptrdiff_t>(ox * stride_ + kx) -
                static_cast<std::ptrdiff_t>(padding_);
            if (ix < 0 || ix >= static_cast<std::ptrdiff_t>(w)) continue;
            img[c * plane + static_cast<std::size_t>(iy) * w +
                static_cast<std::size_t>(ix)] += src[oy * ow + ox];
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& x, Mode mode) {
  FAIRDMS_CHECK(x.rank() == 4 && x.dim(1) == in_c_,
                "Conv2d: expected [N, ", in_c_, ", H, W], got ", x.shape_str());
  const std::size_t n = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = out_size(h);
  const std::size_t ow = out_size(w);
  FAIRDMS_CHECK(oh > 0 && ow > 0, "Conv2d: output collapsed to zero for ",
                x.shape_str());
  if (mode == Mode::kTrain) cached_input_ = x;

  const std::size_t col_rows = in_c_ * kernel_ * kernel_;
  const std::size_t col_cols = oh * ow;
  Tensor y({n, out_c_, oh, ow});
  const float* px = x.data();
  float* py = y.data();
  const float* pw = weight_.data();
  const float* pb = bias_.data();

  util::ThreadPool::global().parallel_for(
      n,
      [&](std::size_t begin, std::size_t end) {
        std::vector<float> cols(col_rows * col_cols);
        for (std::size_t i = begin; i < end; ++i) {
          im2col(px + i * in_c_ * h * w, h, w, cols.data());
          float* out = py + i * out_c_ * col_cols;
          // out[oc, :] = W[oc, :] . cols + b[oc]
          for (std::size_t oc = 0; oc < out_c_; ++oc) {
            float* orow = out + oc * col_cols;
            std::fill(orow, orow + col_cols, pb[oc]);
            const float* wrow = pw + oc * col_rows;
            for (std::size_t r = 0; r < col_rows; ++r) {
              const float wv = wrow[r];
              if (wv == 0.0f) continue;
              const float* crow = cols.data() + r * col_cols;
              for (std::size_t j = 0; j < col_cols; ++j) orow[j] += wv * crow[j];
            }
          }
        }
      },
      /*min_grain=*/1);
  return y;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  FAIRDMS_CHECK(!cached_input_.empty(), "Conv2d::backward before forward");
  const Tensor& x = cached_input_;
  const std::size_t n = x.dim(0);
  const std::size_t h = x.dim(2);
  const std::size_t w = x.dim(3);
  const std::size_t oh = out_size(h);
  const std::size_t ow = out_size(w);
  FAIRDMS_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == n &&
                    grad_out.dim(1) == out_c_ && grad_out.dim(2) == oh &&
                    grad_out.dim(3) == ow,
                "Conv2d: bad grad shape ", grad_out.shape_str());

  const std::size_t col_rows = in_c_ * kernel_ * kernel_;
  const std::size_t col_cols = oh * ow;
  Tensor grad_x(x.shape());
  const float* px = x.data();
  const float* pg = grad_out.data();
  float* pgx = grad_x.data();
  const float* pw = weight_.data();

  // Per-chunk weight/bias gradient accumulators are merged under a mutex so
  // results do not depend on thread interleaving order within a chunk.
  // kTaskLocal: acquired inside pool chunks, possibly while a caller
  // up-stack holds a subsystem lock (help-while-waiting runs chunks on the
  // waiting thread), so it ranks above every subsystem mutex.
  util::Mutex merge_mutex{util::LockRank::kTaskLocal};
  util::ThreadPool::global().parallel_for_chunked(
      n,
      [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
        std::vector<float> cols(col_rows * col_cols);
        std::vector<float> gcols(col_rows * col_cols);
        Tensor local_gw(grad_weight_.shape());
        Tensor local_gb(grad_bias_.shape());
        float* lgw = local_gw.data();
        float* lgb = local_gb.data();
        for (std::size_t i = begin; i < end; ++i) {
          im2col(px + i * in_c_ * h * w, h, w, cols.data());
          const float* gout = pg + i * out_c_ * col_cols;
          // dW[oc, r] += sum_j gout[oc, j] * cols[r, j]
          // db[oc]   += sum_j gout[oc, j]
          // gcols[r, j] = sum_oc W[oc, r] * gout[oc, j]
          std::fill(gcols.begin(), gcols.end(), 0.0f);
          for (std::size_t oc = 0; oc < out_c_; ++oc) {
            const float* grow = gout + oc * col_cols;
            const float* wrow = pw + oc * col_rows;
            float* gwrow = lgw + oc * col_rows;
            double bsum = 0.0;
            for (std::size_t j = 0; j < col_cols; ++j) {
              bsum += static_cast<double>(grow[j]);
            }
            lgb[oc] += static_cast<float>(bsum);
            for (std::size_t r = 0; r < col_rows; ++r) {
              const float* crow = cols.data() + r * col_cols;
              float* gcrow = gcols.data() + r * col_cols;
              const float wv = wrow[r];
              double wsum = 0.0;
              for (std::size_t j = 0; j < col_cols; ++j) {
                wsum += static_cast<double>(grow[j]) * crow[j];
                gcrow[j] += wv * grow[j];
              }
              gwrow[r] += static_cast<float>(wsum);
            }
          }
          col2im(gcols.data(), h, w, pgx + i * in_c_ * h * w);
        }
        util::MutexLock lock(merge_mutex);
        grad_weight_.add_(local_gw);
        grad_bias_.add_(local_gb);
      },
      /*min_grain=*/1);
  return grad_x;
}

}  // namespace fairdms::nn
