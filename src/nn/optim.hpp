// First-order optimizers over a model's (params, grads) tensor lists.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace fairdms::nn {

class Optimizer {
 public:
  explicit Optimizer(Layer& model) : model_(&model) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() { model_->zero_grad(); }

  [[nodiscard]] double learning_rate() const { return lr_; }
  void set_learning_rate(double lr) { lr_ = lr; }

 protected:
  Layer* model_;
  double lr_ = 1e-3;
};

/// SGD with classical momentum and optional L2 weight decay.
class SGD final : public Optimizer {
 public:
  SGD(Layer& model, double lr, double momentum = 0.9,
      double weight_decay = 0.0);
  void step() override;

 private:
  double momentum_;
  double weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(Layer& model, double lr, double beta1 = 0.9, double beta2 = 0.999,
       double eps = 1e-8, double weight_decay = 0.0);
  void step() override;

 private:
  double beta1_, beta2_, eps_, weight_decay_;
  std::size_t t_ = 0;
  std::vector<Tensor> m_;
  std::vector<Tensor> v_;
};

}  // namespace fairdms::nn
