#include "nn/optim.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fairdms::nn {

SGD::SGD(Layer& model, double lr, double momentum, double weight_decay)
    : Optimizer(model), momentum_(momentum), weight_decay_(weight_decay) {
  lr_ = lr;
  for (Tensor* p : model.params()) velocity_.emplace_back(p->shape());
}

void SGD::step() {
  auto params = model_->params();
  auto grads = model_->grads();
  FAIRDMS_CHECK(params.size() == grads.size() &&
                    params.size() == velocity_.size(),
                "SGD: param/grad/state count mismatch");
  const auto lr = static_cast<float>(lr_);
  const auto mu = static_cast<float>(momentum_);
  const auto wd = static_cast<float>(weight_decay_);
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->data();
    const float* g = grads[i]->data();
    float* v = velocity_[i].data();
    for (std::size_t j = 0; j < params[i]->numel(); ++j) {
      const float grad = g[j] + wd * p[j];
      v[j] = mu * v[j] + grad;
      p[j] -= lr * v[j];
    }
  }
}

Adam::Adam(Layer& model, double lr, double beta1, double beta2, double eps,
           double weight_decay)
    : Optimizer(model),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  for (Tensor* p : model.params()) {
    m_.emplace_back(p->shape());
    v_.emplace_back(p->shape());
  }
}

void Adam::step() {
  auto params = model_->params();
  auto grads = model_->grads();
  FAIRDMS_CHECK(params.size() == grads.size() && params.size() == m_.size(),
                "Adam: param/grad/state count mismatch");
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  const double step_size = lr_ / bc1;
  for (std::size_t i = 0; i < params.size(); ++i) {
    float* p = params[i]->data();
    const float* g = grads[i]->data();
    float* m = m_[i].data();
    float* v = v_[i].data();
    for (std::size_t j = 0; j < params[i]->numel(); ++j) {
      const double grad = static_cast<double>(g[j]) +
                          weight_decay_ * static_cast<double>(p[j]);
      m[j] = static_cast<float>(beta1_ * m[j] + (1.0 - beta1_) * grad);
      v[j] = static_cast<float>(beta2_ * v[j] + (1.0 - beta2_) * grad * grad);
      const double vhat = static_cast<double>(v[j]) / bc2;
      p[j] -= static_cast<float>(step_size * static_cast<double>(m[j]) /
                                 (std::sqrt(vhat) + eps_));
    }
  }
}

}  // namespace fairdms::nn
