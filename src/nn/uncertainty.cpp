#include "nn/uncertainty.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fairdms::nn {

McDropoutResult mc_dropout_predict(Sequential& model, const Tensor& x,
                                   std::size_t samples) {
  FAIRDMS_CHECK(samples >= 2, "mc_dropout_predict needs >= 2 samples");
  std::vector<double> sum;
  std::vector<double> sum_sq;
  std::vector<std::size_t> shape;
  for (std::size_t s = 0; s < samples; ++s) {
    Tensor y = model.forward(x, Mode::kMcSample);
    if (s == 0) {
      shape = y.shape();
      sum.assign(y.numel(), 0.0);
      sum_sq.assign(y.numel(), 0.0);
    }
    const float* py = y.data();
    for (std::size_t i = 0; i < y.numel(); ++i) {
      sum[i] += static_cast<double>(py[i]);
      sum_sq[i] += static_cast<double>(py[i]) * py[i];
    }
  }
  const auto n = static_cast<double>(samples);
  McDropoutResult out;
  out.mean = Tensor(shape);
  out.std = Tensor(shape);
  float* pm = out.mean.data();
  float* pd = out.std.data();
  for (std::size_t i = 0; i < sum.size(); ++i) {
    const double mean = sum[i] / n;
    double var = sum_sq[i] / n - mean * mean;
    // Clamp cancellation residue: identical samples must report zero spread.
    if (var <= 1e-10 * std::max(1.0, mean * mean)) var = 0.0;
    pm[i] = static_cast<float>(mean);
    pd[i] = static_cast<float>(std::sqrt(var));
  }
  return out;
}

double mc_dropout_uncertainty(Sequential& model, const Tensor& x,
                              std::size_t samples) {
  const McDropoutResult r = mc_dropout_predict(model, x, samples);
  return r.std.mean();
}

}  // namespace fairdms::nn
