// 2-D convolution via im2col + GEMM. Input layout [N, C, H, W].
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace fairdms::nn {

class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, util::Rng& rng, std::size_t stride = 1,
         std::size_t padding = 0);

  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  [[nodiscard]] std::string name() const override { return "Conv2d"; }

  [[nodiscard]] std::size_t out_size(std::size_t in_size) const {
    return (in_size + 2 * padding_ - kernel_) / stride_ + 1;
  }

 private:
  /// Expands x[n] into a [C*K*K, OH*OW] column matrix.
  void im2col(const float* img, std::size_t h, std::size_t w,
              float* cols) const;
  /// Scatter-adds a column matrix back into an image (transpose of im2col).
  void col2im(const float* cols, std::size_t h, std::size_t w,
              float* img) const;

  std::size_t in_c_, out_c_, kernel_, stride_, padding_;
  Tensor weight_;       // [OC, IC*K*K]
  Tensor bias_;         // [OC]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;  // [N, C, H, W]
};

}  // namespace fairdms::nn
