#include "nn/trainer.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace fairdms::nn {

Tensor gather_rows(const Tensor& t, std::span<const std::size_t> indices) {
  FAIRDMS_CHECK(t.rank() >= 1, "gather_rows on scalar tensor");
  std::size_t row_elems = 1;
  for (std::size_t a = 1; a < t.rank(); ++a) row_elems *= t.dim(a);
  std::vector<std::size_t> shape = t.shape();
  shape[0] = indices.size();
  Tensor out(shape);
  const float* src = t.data();
  float* dst = out.data();
  for (std::size_t i = 0; i < indices.size(); ++i) {
    FAIRDMS_CHECK(indices[i] < t.dim(0), "gather_rows index out of range");
    std::copy_n(src + indices[i] * row_elems, row_elems, dst + i * row_elems);
  }
  return out;
}

double evaluate(Sequential& model, const Batchset& data,
                std::size_t batch_size) {
  const std::size_t n = data.size();
  if (n == 0) return 0.0;
  double total = 0.0;
  std::vector<std::size_t> idx(batch_size);
  for (std::size_t begin = 0; begin < n; begin += batch_size) {
    const std::size_t end = std::min(n, begin + batch_size);
    idx.resize(end - begin);
    std::iota(idx.begin(), idx.end(), begin);
    const Tensor xb = gather_rows(data.xs, idx);
    const Tensor yb = gather_rows(data.ys, idx);
    const Tensor pred = model.forward(xb, Mode::kEval);
    total += mse_loss(pred, yb).value * static_cast<double>(end - begin);
  }
  return total / static_cast<double>(n);
}

TrainResult fit(Sequential& model, Optimizer& optimizer, const Batchset& train,
                const Batchset& val, const TrainConfig& config,
                util::Rng& rng) {
  FAIRDMS_CHECK(train.size() > 0, "fit: empty training set");
  FAIRDMS_CHECK(config.batch_size > 0, "fit: batch_size must be positive");

  TrainResult result;
  result.best_val_error = std::numeric_limits<double>::infinity();
  util::WallTimer timer;

  std::vector<std::size_t> order(train.size());
  std::iota(order.begin(), order.end(), 0);
  std::size_t epochs_since_best = 0;

  for (std::size_t epoch = 1; epoch <= config.max_epochs; ++epoch) {
    rng.shuffle(order);
    double train_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < order.size();
         begin += config.batch_size) {
      const std::size_t end =
          std::min(order.size(), begin + config.batch_size);
      const std::span<const std::size_t> batch_idx(order.data() + begin,
                                                   end - begin);
      const Tensor xb = gather_rows(train.xs, batch_idx);
      const Tensor yb = gather_rows(train.ys, batch_idx);

      optimizer.zero_grad();
      const Tensor pred = model.forward(xb, Mode::kTrain);
      const LossResult loss = mse_loss(pred, yb);
      model.backward(loss.grad);
      optimizer.step();
      train_loss += loss.value;
      ++batches;
    }
    train_loss /= static_cast<double>(std::max<std::size_t>(1, batches));

    const double val_error =
        val.size() > 0 ? evaluate(model, val) : train_loss;
    result.curve.push_back(val_error);
    result.epochs_run = epoch;
    result.final_val_error = val_error;
    if (config.on_epoch) config.on_epoch(epoch, train_loss, val_error);

    if (val_error < result.best_val_error) {
      result.best_val_error = val_error;
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
    }

    if (config.target_val_error > 0.0 &&
        val_error <= config.target_val_error) {
      result.reached_target = true;
      if (result.convergence_epoch == 0) result.convergence_epoch = epoch;
      break;
    }
    if (config.patience > 0 && epochs_since_best >= config.patience) break;
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace fairdms::nn
