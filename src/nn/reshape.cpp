#include "nn/reshape.hpp"

#include "util/check.hpp"

namespace fairdms::nn {

Tensor Flatten::forward(const Tensor& x, Mode mode) {
  FAIRDMS_CHECK(x.rank() >= 2, "Flatten expects rank >= 2, got ",
                x.shape_str());
  if (mode == Mode::kTrain) input_shape_ = x.shape();
  std::size_t features = 1;
  for (std::size_t a = 1; a < x.rank(); ++a) features *= x.dim(a);
  return x.reshaped({x.dim(0), features});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  FAIRDMS_CHECK(!input_shape_.empty(), "Flatten::backward before forward");
  return grad_out.reshaped(input_shape_);
}

Tensor Unflatten::forward(const Tensor& x, Mode /*mode*/) {
  FAIRDMS_CHECK(x.rank() == 2 && x.dim(1) == c_ * h_ * w_,
                "Unflatten: expected [N, ", c_ * h_ * w_, "], got ",
                x.shape_str());
  return x.reshaped({x.dim(0), c_, h_, w_});
}

Tensor Unflatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped({grad_out.dim(0), c_ * h_ * w_});
}

}  // namespace fairdms::nn
