#include "nn/dropout.hpp"

#include "util/check.hpp"

namespace fairdms::nn {

Dropout::Dropout(float p, util::Rng& rng) : p_(p), rng_(&rng) {
  FAIRDMS_CHECK(p >= 0.0f && p < 1.0f, "Dropout p out of range: ", p);
}

Tensor Dropout::forward(const Tensor& x, Mode mode) {
  if (mode == Mode::kEval || p_ == 0.0f) return x;
  const float keep = 1.0f - p_;
  const float scale = 1.0f / keep;
  mask_ = Tensor(x.shape());
  float* pm = mask_.data();
  for (std::size_t i = 0; i < mask_.numel(); ++i) {
    pm[i] = rng_->uniform() < static_cast<double>(keep) ? scale : 0.0f;
  }
  Tensor y = x;
  return y.mul_(mask_);
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (p_ == 0.0f) return grad_out;
  FAIRDMS_CHECK(!mask_.empty(), "Dropout::backward before forward");
  Tensor gx = grad_out;
  return gx.mul_(mask_);
}

}  // namespace fairdms::nn
