// Generic supervised training loop with convergence-based early stopping.
//
// Used by every experiment that compares "fine-tune from a recommended
// foundation model" against "retrain from scratch" (paper Figs. 13–15): the
// figure of merit is how many epochs / seconds until validation error reaches
// a target, so the trainer records the full learning curve.
#pragma once

#include <functional>
#include <vector>

#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "nn/sequential.hpp"
#include "util/rng.hpp"

namespace fairdms::nn {

struct TrainConfig {
  std::size_t max_epochs = 100;
  std::size_t batch_size = 32;
  /// Stop as soon as validation error <= target (0 disables).
  double target_val_error = 0.0;
  /// Stop when validation error has not improved for this many epochs
  /// (0 disables patience-based stopping).
  std::size_t patience = 0;
  /// Per-epoch callback (epoch, train_loss, val_error); optional.
  std::function<void(std::size_t, double, double)> on_epoch;
};

struct TrainResult {
  std::vector<double> curve;   ///< validation error after each epoch
  std::size_t epochs_run = 0;
  double final_val_error = 0.0;
  double best_val_error = 0.0;
  double seconds = 0.0;        ///< wall time spent in the loop
  bool reached_target = false;
  /// First epoch (1-based) at which val error <= target; 0 if never.
  std::size_t convergence_epoch = 0;
};

/// Supervised dataset view: xs[i] pairs with ys[i] along dim 0.
struct Batchset {
  Tensor xs;  ///< [N, ...]
  Tensor ys;  ///< [N, ...]
  [[nodiscard]] std::size_t size() const {
    return xs.empty() ? 0 : xs.dim(0);
  }
};

/// Extracts rows `indices` of a [N, ...] tensor into a new [B, ...] tensor.
Tensor gather_rows(const Tensor& t, std::span<const std::size_t> indices);

/// Mean loss of `model` on a dataset, evaluated in kEval mode batch-wise.
double evaluate(Sequential& model, const Batchset& data,
                std::size_t batch_size = 256);

/// Runs mini-batch gradient descent with shuffling. The loss is MSE (the
/// regression objective used by BraggNN / CookieNetAE / TomoNet).
TrainResult fit(Sequential& model, Optimizer& optimizer,
                const Batchset& train, const Batchset& val,
                const TrainConfig& config, util::Rng& rng);

}  // namespace fairdms::nn
