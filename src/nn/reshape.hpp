// Shape-adapters: Flatten ([N,C,H,W] -> [N, C*H*W]) and Unflatten (inverse).
#pragma once

#include "nn/layer.hpp"

namespace fairdms::nn {

class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::size_t> input_shape_;
};

/// Reshapes [N, C*H*W] back to [N, C, H, W] (decoder-side of autoencoders).
class Unflatten final : public Layer {
 public:
  Unflatten(std::size_t channels, std::size_t height, std::size_t width)
      : c_(channels), h_(height), w_(width) {}
  Tensor forward(const Tensor& x, Mode mode) override;
  Tensor backward(const Tensor& grad_out) override;
  [[nodiscard]] std::string name() const override { return "Unflatten"; }

 private:
  std::size_t c_, h_, w_;
};

}  // namespace fairdms::nn
