#include "datagen/tomography.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fairdms::datagen {

void render_phantom(const TomoConfig& config, util::Rng& rng,
                    std::span<float> out) {
  const std::size_t s = config.size;
  FAIRDMS_CHECK(out.size() == s * s, "render_phantom: bad buffer size");
  std::fill(out.begin(), out.end(), 0.0f);

  const std::size_t n_ellipses = 3 + rng.uniform_index(config.max_ellipses);
  for (std::size_t e = 0; e < n_ellipses; ++e) {
    const double cx = rng.uniform(0.2, 0.8) * static_cast<double>(s);
    const double cy = rng.uniform(0.2, 0.8) * static_cast<double>(s);
    const double ra = rng.uniform(0.04, 0.28) * static_cast<double>(s);
    const double rb = rng.uniform(0.04, 0.28) * static_cast<double>(s);
    const double theta = rng.uniform(0.0, 3.14159265);
    const auto density = static_cast<float>(rng.uniform(0.15, 0.5));
    const double ct = std::cos(theta), st = std::sin(theta);
    const auto y_lo = static_cast<std::size_t>(
        std::max(0.0, cy - std::max(ra, rb) - 1.0));
    const auto y_hi = static_cast<std::size_t>(
        std::min<double>(static_cast<double>(s), cy + std::max(ra, rb) + 1.0));
    for (std::size_t y = y_lo; y < y_hi; ++y) {
      for (std::size_t x = 0; x < s; ++x) {
        const double dx = static_cast<double>(x) - cx;
        const double dy = static_cast<double>(y) - cy;
        const double u = (ct * dx + st * dy) / ra;
        const double v = (-st * dx + ct * dy) / rb;
        if (u * u + v * v <= 1.0) out[y * s + x] += density;
      }
    }
  }
  for (float& v : out) v = std::min(v, 1.0f);
}

nn::Batchset make_tomo_batchset(const TomoConfig& config, std::size_t n,
                                util::Rng& rng) {
  const std::size_t s = config.size;
  nn::Batchset out;
  out.xs = nn::Tensor({n, 1, s, s});
  out.ys = nn::Tensor({n, 1, s, s});
  float* px = out.xs.data();
  float* py = out.ys.data();
  std::vector<float> clean(s * s);
  for (std::size_t i = 0; i < n; ++i) {
    render_phantom(config, rng, clean);
    std::copy(clean.begin(), clean.end(), py + i * s * s);
    float* frame = px + i * s * s;
    for (std::size_t j = 0; j < s * s; ++j) {
      // Low-dose acquisition: Poisson photon statistics + readout noise.
      const double lambda = config.dose * static_cast<double>(clean[j]) + 0.5;
      const double counts = static_cast<double>(rng.poisson(lambda));
      frame[j] = static_cast<float>(
          counts / config.dose + rng.gaussian(0.0, config.readout_noise));
    }
  }
  return out;
}

}  // namespace fairdms::datagen
