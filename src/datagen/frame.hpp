// Full detector-frame synthesis for the conventional-labeling pipeline.
//
// The paper's HEDM scans are sequences of full 1440x1440 detector frames,
// each holding many diffraction peaks; MIDAS labels a scan by searching each
// frame for peaks and fitting every one. Patch datasets (datagen/bragg.hpp)
// are what the ML path consumes; frames are what the conventional baseline
// has to chew through — that asymmetry is the heart of Fig. 15.
#pragma once

#include <vector>

#include "datagen/bragg.hpp"

namespace fairdms::datagen {

struct FrameConfig {
  std::size_t size = 256;       ///< square frame side (paper: 1440)
  std::size_t peaks = 40;       ///< diffraction peaks per frame
  double min_separation = 12.0; ///< centers at least this many px apart
};

struct Frame {
  std::vector<float> pixels;            ///< size*size, row-major
  std::vector<PeakParams> truth;        ///< generative peak parameters
};

/// Renders one frame with `config.peaks` non-overlapping peaks drawn from
/// `regime`, plus the regime's pixel noise.
Frame render_frame(const FrameConfig& config, const BraggRegime& regime,
                   util::Rng& rng);

}  // namespace fairdms::datagen
