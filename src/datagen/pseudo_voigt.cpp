#include "datagen/pseudo_voigt.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fairdms::datagen {

double pseudo_voigt(const PeakParams& p, double x, double y) {
  const double dx = x - p.center_x;
  const double dy = y - p.center_y;
  const double ct = std::cos(p.theta);
  const double st = std::sin(p.theta);
  const double u = (ct * dx + st * dy) / p.sigma_major;
  const double v = (-st * dx + ct * dy) / p.sigma_minor;
  const double r2 = u * u + v * v;
  const double gauss = std::exp(-0.5 * r2);
  const double lorentz = 1.0 / (1.0 + r2);
  return p.background + p.amplitude * (p.eta * lorentz + (1.0 - p.eta) * gauss);
}

void render_peak(const PeakParams& p, std::size_t size, std::span<float> out) {
  FAIRDMS_CHECK(out.size() == size * size, "render_peak: bad buffer size");
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      out[y * size + x] = static_cast<float>(
          pseudo_voigt(p, static_cast<double>(x), static_cast<double>(y)));
    }
  }
}

void intensity_centroid(std::span<const float> patch, std::size_t size,
                        double& cx, double& cy) {
  FAIRDMS_CHECK(patch.size() == size * size, "intensity_centroid: bad size");
  double total = 0.0, sx = 0.0, sy = 0.0;
  float min_val = patch[0];
  for (float v : patch) min_val = std::min(min_val, v);
  for (std::size_t y = 0; y < size; ++y) {
    for (std::size_t x = 0; x < size; ++x) {
      const double w = static_cast<double>(patch[y * size + x]) - min_val;
      total += w;
      sx += w * static_cast<double>(x);
      sy += w * static_cast<double>(y);
    }
  }
  if (total <= 0.0) {
    cx = cy = static_cast<double>(size - 1) / 2.0;
    return;
  }
  cx = sx / total;
  cy = sy / total;
}

}  // namespace fairdms::datagen
