// Synthetic BraggPeaks dataset and HEDM experiment timelines.
//
// Substitution (DESIGN.md §4): the paper uses 1.87M real 15x15 Bragg-peak
// patches from 27 APS experiments. We render patches from 2-D pseudo-Voigt
// profiles whose generative parameters are drawn from an experiment *regime*.
// A regime drifts smoothly with scan index (sample heating, detector drift)
// and jumps at "deformation events" — exactly the phenomenon that degrades
// the deployed model in the paper's Fig. 2 and makes the dataset-similarity
// structure bimodal in Fig. 10.
#pragma once

#include <cstddef>
#include <vector>

#include "datagen/pseudo_voigt.hpp"
#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace fairdms::datagen {

/// Distribution over PeakParams for one experimental condition.
struct BraggRegime {
  double sigma_major_mean = 2.2;
  double sigma_major_sd = 0.25;
  double aspect_mean = 0.75;   ///< sigma_minor / sigma_major
  double aspect_sd = 0.08;
  double theta_mean = 0.6;     ///< preferred orientation (radians)
  double theta_sd = 0.5;
  double eta_mean = 0.45;      ///< Lorentzian fraction
  double eta_sd = 0.1;
  double amplitude_mean = 1.0;
  double amplitude_sd = 0.2;
  double noise_sd = 0.03;      ///< additive Gaussian pixel noise
  double center_jitter = 2.5;  ///< max |offset| of center from patch middle
};

struct BraggSample {
  std::vector<float> patch;  ///< size*size pixels
  double center_x = 0.0;     ///< ground-truth sub-pixel center
  double center_y = 0.0;
};

struct BraggConfig {
  std::size_t patch_size = 15;  ///< the paper's 15x15 patches
};

/// Draws one sample from a regime.
BraggSample sample_bragg(const BraggRegime& regime, const BraggConfig& config,
                         util::Rng& rng);

/// Renders n samples into a supervised Batchset:
/// xs [n, 1, S, S] normalized patches; ys [n, 2] = center offset from the
/// patch midpoint in units of patch size (so errors * S are pixels).
nn::Batchset make_bragg_batchset(const BraggRegime& regime,
                                 const BraggConfig& config, std::size_t n,
                                 util::Rng& rng);

/// Pixel distance between predicted and true centers for normalized labels.
double bragg_pixel_error(const nn::Tensor& pred, const nn::Tensor& truth,
                         std::size_t patch_size, std::size_t row);

/// An HEDM experiment timeline: regimes drift linearly with scan index and
/// jump by `deformation_jump` at each deformation scan (paper: the sample
/// deformation after scan 444 in Fig. 2; the bimodal configuration change in
/// Fig. 10).
struct HedmTimelineConfig {
  BraggRegime base;
  std::size_t n_scans = 100;
  double drift_per_scan = 0.004;  ///< fractional drift of widths/eta per scan
  std::vector<std::size_t> deformation_scans;
  double deformation_jump = 0.45;  ///< regime shift applied at each event
};

class HedmTimeline {
 public:
  explicit HedmTimeline(HedmTimelineConfig config)
      : config_(std::move(config)) {}

  [[nodiscard]] const HedmTimelineConfig& config() const { return config_; }

  /// Regime in effect at a scan index (drift + accumulated deformations).
  [[nodiscard]] BraggRegime regime_at(std::size_t scan) const;

  /// Dataset for one scan; deterministic in (seed, scan).
  [[nodiscard]] nn::Batchset dataset_at(std::size_t scan, std::size_t n,
                                        std::uint64_t seed,
                                        const BraggConfig& config = {}) const;

 private:
  HedmTimelineConfig config_;
};

}  // namespace fairdms::datagen
