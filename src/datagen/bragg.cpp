#include "datagen/bragg.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fairdms::datagen {

namespace {
double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }
}  // namespace

BraggSample sample_bragg(const BraggRegime& regime, const BraggConfig& config,
                         util::Rng& rng) {
  const std::size_t s = config.patch_size;
  const double mid = static_cast<double>(s - 1) / 2.0;

  PeakParams p;
  p.center_x = mid + rng.uniform(-regime.center_jitter, regime.center_jitter);
  p.center_y = mid + rng.uniform(-regime.center_jitter, regime.center_jitter);
  p.sigma_major =
      std::max(0.5, rng.gaussian(regime.sigma_major_mean,
                                 regime.sigma_major_sd));
  const double aspect =
      std::clamp(rng.gaussian(regime.aspect_mean, regime.aspect_sd), 0.3, 1.0);
  p.sigma_minor = std::max(0.4, p.sigma_major * aspect);
  p.theta = rng.gaussian(regime.theta_mean, regime.theta_sd);
  p.eta = clamp01(rng.gaussian(regime.eta_mean, regime.eta_sd));
  p.amplitude =
      std::max(0.2, rng.gaussian(regime.amplitude_mean, regime.amplitude_sd));
  p.background = 0.0;

  BraggSample sample;
  sample.patch.resize(s * s);
  render_peak(p, s, sample.patch);
  for (float& v : sample.patch) {
    v += static_cast<float>(rng.gaussian(0.0, regime.noise_sd));
  }
  sample.center_x = p.center_x;
  sample.center_y = p.center_y;
  return sample;
}

nn::Batchset make_bragg_batchset(const BraggRegime& regime,
                                 const BraggConfig& config, std::size_t n,
                                 util::Rng& rng) {
  const std::size_t s = config.patch_size;
  const double mid = static_cast<double>(s - 1) / 2.0;
  nn::Batchset out;
  out.xs = nn::Tensor({n, 1, s, s});
  out.ys = nn::Tensor({n, 2});
  float* px = out.xs.data();
  float* py = out.ys.data();
  for (std::size_t i = 0; i < n; ++i) {
    const BraggSample sample = sample_bragg(regime, config, rng);
    std::copy(sample.patch.begin(), sample.patch.end(), px + i * s * s);
    py[i * 2 + 0] =
        static_cast<float>((sample.center_x - mid) / static_cast<double>(s));
    py[i * 2 + 1] =
        static_cast<float>((sample.center_y - mid) / static_cast<double>(s));
  }
  return out;
}

double bragg_pixel_error(const nn::Tensor& pred, const nn::Tensor& truth,
                         std::size_t patch_size, std::size_t row) {
  FAIRDMS_CHECK(pred.rank() == 2 && pred.dim(1) == 2, "bragg_pixel_error: ",
                "pred must be [N, 2]");
  FAIRDMS_CHECK(row < pred.dim(0) && row < truth.dim(0),
                "bragg_pixel_error: row out of range");
  const double dx = (static_cast<double>(pred.at(row, 0)) -
                     truth.at(row, 0)) *
                    static_cast<double>(patch_size);
  const double dy = (static_cast<double>(pred.at(row, 1)) -
                     truth.at(row, 1)) *
                    static_cast<double>(patch_size);
  return std::sqrt(dx * dx + dy * dy);
}

BraggRegime HedmTimeline::regime_at(std::size_t scan) const {
  FAIRDMS_CHECK(scan < config_.n_scans, "scan ", scan, " beyond timeline of ",
                config_.n_scans);
  BraggRegime r = config_.base;
  const double t = static_cast<double>(scan);
  const double drift = config_.drift_per_scan * t;

  // Smooth drift: widths broaden, peaks become more Lorentzian, orientation
  // rotates — all familiar signatures of slow sample/detector evolution.
  r.sigma_major_mean *= 1.0 + drift;
  r.eta_mean = clamp01(r.eta_mean + 0.5 * drift);
  r.theta_mean += 0.8 * drift;

  // Deformation events: discrete regime jumps (plastic deformation changes
  // strain state -> peak shape changes qualitatively).
  for (std::size_t event : config_.deformation_scans) {
    if (scan >= event) {
      r.sigma_major_mean *= 1.0 + config_.deformation_jump;
      r.aspect_mean = std::clamp(
          r.aspect_mean - 0.35 * config_.deformation_jump, 0.3, 1.0);
      r.eta_mean = clamp01(r.eta_mean + 0.6 * config_.deformation_jump);
      r.theta_mean += 1.1 * config_.deformation_jump;
      r.noise_sd *= 1.0 + 0.5 * config_.deformation_jump;
    }
  }
  return r;
}

nn::Batchset HedmTimeline::dataset_at(std::size_t scan, std::size_t n,
                                      std::uint64_t seed,
                                      const BraggConfig& config) const {
  util::Rng rng(seed ^ (0xA5A5'0000'0000'0000ull + scan * 0x9E37'79B9ull));
  const BraggRegime regime = regime_at(scan);
  return make_bragg_batchset(regime, config, n, rng);
}

}  // namespace fairdms::datagen
