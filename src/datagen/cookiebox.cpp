#include "datagen/cookiebox.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.hpp"

namespace fairdms::datagen {

namespace {

/// Smooth per-channel energy density over `bins` buckets; sums to 1.
void channel_density(const CookieBoxRegime& regime, std::size_t channel,
                     std::size_t channels, std::size_t bins,
                     std::vector<double>& pdf) {
  pdf.assign(bins, 0.0);
  const double angle = 2.0 * std::numbers::pi * static_cast<double>(channel) /
                       static_cast<double>(channels);
  // Angular streaking: the photoline center shifts sinusoidally with channel
  // angle relative to the laser polarization phase.
  const double photoline =
      regime.photoline_center +
      regime.streak_amplitude * std::sin(angle + regime.streak_phase);
  const double auger = regime.auger_center;
  const double w = regime.photoline_width;
  double total = 0.0;
  for (std::size_t b = 0; b < bins; ++b) {
    const double e = (static_cast<double>(b) + 0.5) / static_cast<double>(bins);
    const double d1 = (e - photoline) / w;
    const double d2 = (e - auger) / (1.6 * w);
    const double v = std::exp(-0.5 * d1 * d1) +
                     regime.auger_strength * std::exp(-0.5 * d2 * d2);
    pdf[b] = v;
    total += v;
  }
  FAIRDMS_CHECK(total > 0.0, "degenerate CookieBox density");
  for (double& v : pdf) v /= total;
}

}  // namespace

nn::Batchset make_cookiebox_batchset(const CookieBoxRegime& regime,
                                     const CookieBoxConfig& config,
                                     std::size_t n, util::Rng& rng) {
  const std::size_t h = config.height();
  const std::size_t w = config.bins;
  nn::Batchset out;
  out.xs = nn::Tensor({n, 1, h, w});
  out.ys = nn::Tensor({n, 1, h, w});
  float* px = out.xs.data();
  float* py = out.ys.data();

  std::vector<double> pdf;
  std::vector<std::vector<double>> densities(config.channels);
  for (std::size_t c = 0; c < config.channels; ++c) {
    channel_density(regime, c, config.channels, w, pdf);
    densities[c] = pdf;
  }

  for (std::size_t i = 0; i < n; ++i) {
    // Per-shot intensity fluctuation (SASE pulses vary shot to shot).
    const double shot_scale = std::max(0.25, rng.gaussian(1.0, 0.15));
    for (std::size_t row = 0; row < h; ++row) {
      const auto& density = densities[row / config.rows_per_channel];
      float* xrow = px + (i * h + row) * w;
      float* yrow = py + (i * h + row) * w;
      const double lam_row = config.counts_per_row * shot_scale;
      for (std::size_t b = 0; b < w; ++b) {
        const double lambda = lam_row * density[b];
        const auto counts = static_cast<double>(rng.poisson(lambda));
        // Normalize counts back to density scale so input magnitude is
        // invariant to counts_per_row.
        xrow[b] = static_cast<float>(counts / lam_row);
        yrow[b] = static_cast<float>(density[b]);
      }
    }
  }
  return out;
}

CookieBoxRegime CookieBoxTimeline::regime_at(std::size_t step) const {
  FAIRDMS_CHECK(step < config_.n_steps, "step ", step, " beyond timeline of ",
                config_.n_steps);
  CookieBoxRegime r = config_.base;
  const double t = static_cast<double>(step);
  r.photoline_center =
      std::clamp(r.photoline_center + config_.center_drift_per_step * t,
                 0.05, 0.95);
  r.streak_phase += config_.phase_drift_per_step * t;
  return r;
}

nn::Batchset CookieBoxTimeline::dataset_at(std::size_t step, std::size_t n,
                                           std::uint64_t seed,
                                           const CookieBoxConfig& config)
    const {
  util::Rng rng(seed ^ (0xC00C'1EB0'0000'0000ull + step * 0x9E37'79B9ull));
  return make_cookiebox_batchset(regime_at(step), config, n, rng);
}

}  // namespace fairdms::datagen
