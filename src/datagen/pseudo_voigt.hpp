// 2-D pseudo-Voigt peak profile.
//
// This is both the generative model for synthetic Bragg-peak patches
// (substituting the paper's 1.87M real APS diffraction patches — see
// DESIGN.md §4) and the model function that the MIDAS-analog fitter in
// src/labeling regresses. pV = eta * Lorentzian + (1 - eta) * Gaussian over
// an elliptical, rotated footprint.
#pragma once

#include <cstddef>
#include <span>

namespace fairdms::datagen {

struct PeakParams {
  double center_x = 7.0;    ///< sub-pixel x of the peak center
  double center_y = 7.0;    ///< sub-pixel y of the peak center
  double sigma_major = 2.0; ///< Gaussian width along the major axis (px)
  double sigma_minor = 1.5; ///< width along the minor axis (px)
  double theta = 0.0;       ///< major-axis orientation (radians)
  double eta = 0.5;         ///< Lorentzian fraction in [0, 1]
  double amplitude = 1.0;   ///< peak height above background
  double background = 0.0;  ///< constant baseline
};

/// Profile value at (x, y).
double pseudo_voigt(const PeakParams& p, double x, double y);

/// Renders the profile into a row-major size x size patch (no noise).
void render_peak(const PeakParams& p, std::size_t size, std::span<float> out);

/// Intensity-weighted centroid of a patch — the classical first-moment
/// estimate used to initialize the Voigt fit.
void intensity_centroid(std::span<const float> patch, std::size_t size,
                        double& cx, double& cy);

}  // namespace fairdms::datagen
