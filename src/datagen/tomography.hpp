// Synthetic tomography dataset.
//
// Substitution (DESIGN.md §4): the paper's tomography samples are 2048x2048
// 16-bit synchrotron CT frames used purely as a *large-sample* storage/I-O
// workload (Fig. 6) and as the denoising application example. We generate
// random ellipse phantoms: the clean phantom is the label, a low-dose
// Poisson + Gaussian corrupted version is the input. Image size is a config
// knob; the I/O benches keep the paper's bytes-per-sample ordering
// (tomography >> cookiebox >> bragg).
#pragma once

#include <cstddef>

#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace fairdms::datagen {

struct TomoConfig {
  std::size_t size = 128;      ///< square image side (paper: 2048)
  std::size_t max_ellipses = 12;
  double dose = 18.0;          ///< mean photons per pixel at unit intensity
  double readout_noise = 0.02; ///< additive Gaussian readout noise
};

/// xs [n, 1, S, S]: low-dose noisy frames; ys [n, 1, S, S]: clean phantoms.
nn::Batchset make_tomo_batchset(const TomoConfig& config, std::size_t n,
                                util::Rng& rng);

/// Renders a single clean phantom into out (size*size floats in [0, 1]).
void render_phantom(const TomoConfig& config, util::Rng& rng,
                    std::span<float> out);

}  // namespace fairdms::datagen
