// Synthetic CookieBox dataset.
//
// Substitution (DESIGN.md §4): the paper's CookieBox data come from a
// simulation of an angular array of 16 electron time-of-flight spectrometers;
// each image row is an empirical energy histogram of one channel and the
// CookieNetAE label is the underlying smooth energy-angle probability density.
// We model each channel's spectrum as a mixture of Gaussians over energy bins
// whose centers depend on channel angle (sinusoidal angular modulation from
// the circularly polarized field), Poisson-sample counts for the input, and
// use the noiseless density as the label. Drift = spectral peaks migrating
// with experiment phase.
#pragma once

#include <cstddef>

#include "nn/trainer.hpp"
#include "util/rng.hpp"

namespace fairdms::datagen {

struct CookieBoxConfig {
  std::size_t bins = 32;      ///< energy bins == image width (paper: 128)
  std::size_t channels = 16;  ///< spectrometer channels (paper: 16)
  /// image height = channels * rows_per_channel (paper: 128 rows)
  std::size_t rows_per_channel = 2;
  double counts_per_row = 220.0;  ///< mean detected electrons per row
  [[nodiscard]] std::size_t height() const {
    return channels * rows_per_channel;
  }
};

/// One experimental condition: where the photoline sits and how the angular
/// streaking modulates it.
struct CookieBoxRegime {
  double photoline_center = 0.45;  ///< fractional energy of the main line
  double photoline_width = 0.035;  ///< fractional width
  double streak_amplitude = 0.12;  ///< angular modulation depth
  double streak_phase = 0.0;       ///< laser/X-ray relative phase
  double auger_center = 0.72;      ///< secondary (Auger) line position
  double auger_strength = 0.45;    ///< relative intensity of the second line
};

/// xs [n, 1, H, W]: normalized Poisson histograms; ys [n, 1, H, W]: the
/// underlying smooth density (CookieNetAE's regression target).
nn::Batchset make_cookiebox_batchset(const CookieBoxRegime& regime,
                                     const CookieBoxConfig& config,
                                     std::size_t n, util::Rng& rng);

/// Gradually drifting experiment timeline (the monotone setting of Fig. 11).
struct CookieBoxTimelineConfig {
  CookieBoxRegime base;
  std::size_t n_steps = 40;
  double center_drift_per_step = 0.005;  ///< photoline migration per step
  double phase_drift_per_step = 0.06;    ///< streak phase advance per step
};

class CookieBoxTimeline {
 public:
  explicit CookieBoxTimeline(CookieBoxTimelineConfig config)
      : config_(std::move(config)) {}

  [[nodiscard]] const CookieBoxTimelineConfig& config() const {
    return config_;
  }
  [[nodiscard]] CookieBoxRegime regime_at(std::size_t step) const;
  [[nodiscard]] nn::Batchset dataset_at(std::size_t step, std::size_t n,
                                        std::uint64_t seed,
                                        const CookieBoxConfig& config = {})
      const;

 private:
  CookieBoxTimelineConfig config_;
};

}  // namespace fairdms::datagen
