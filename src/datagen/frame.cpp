#include "datagen/frame.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fairdms::datagen {

Frame render_frame(const FrameConfig& config, const BraggRegime& regime,
                   util::Rng& rng) {
  const std::size_t s = config.size;
  FAIRDMS_CHECK(s >= 32, "frame too small: ", s);
  Frame frame;
  frame.pixels.assign(s * s, 0.0f);

  // Rejection-sample peak centers with a minimum separation so the peak
  // finder sees isolated blobs (HEDM far-field frames are sparse).
  const double margin = 8.0;
  for (std::size_t p = 0; p < config.peaks; ++p) {
    PeakParams params;
    bool placed = false;
    for (int attempt = 0; attempt < 200 && !placed; ++attempt) {
      const double cx =
          rng.uniform(margin, static_cast<double>(s) - margin);
      const double cy =
          rng.uniform(margin, static_cast<double>(s) - margin);
      placed = true;
      for (const PeakParams& other : frame.truth) {
        const double dx = cx - other.center_x;
        const double dy = cy - other.center_y;
        if (dx * dx + dy * dy <
            config.min_separation * config.min_separation) {
          placed = false;
          break;
        }
      }
      if (placed) {
        params.center_x = cx;
        params.center_y = cy;
      }
    }
    if (!placed) continue;  // frame saturated; fewer peaks is fine
    params.sigma_major = std::max(
        0.6, rng.gaussian(regime.sigma_major_mean, regime.sigma_major_sd));
    const double aspect = std::clamp(
        rng.gaussian(regime.aspect_mean, regime.aspect_sd), 0.3, 1.0);
    params.sigma_minor = std::max(0.5, params.sigma_major * aspect);
    params.theta = rng.gaussian(regime.theta_mean, regime.theta_sd);
    params.eta = std::clamp(rng.gaussian(regime.eta_mean, regime.eta_sd),
                            0.0, 1.0);
    params.amplitude = std::max(
        0.3, rng.gaussian(regime.amplitude_mean, regime.amplitude_sd));
    params.background = 0.0;
    frame.truth.push_back(params);
  }

  // Additive rendering within a local window per peak (profiles decay fast).
  for (const PeakParams& p : frame.truth) {
    const double reach = 6.0 * p.sigma_major;
    const auto x_lo = static_cast<std::size_t>(
        std::max(0.0, p.center_x - reach));
    const auto x_hi = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(s), p.center_x + reach + 1.0));
    const auto y_lo = static_cast<std::size_t>(
        std::max(0.0, p.center_y - reach));
    const auto y_hi = static_cast<std::size_t>(std::min<double>(
        static_cast<double>(s), p.center_y + reach + 1.0));
    for (std::size_t y = y_lo; y < y_hi; ++y) {
      for (std::size_t x = x_lo; x < x_hi; ++x) {
        frame.pixels[y * s + x] += static_cast<float>(pseudo_voigt(
            p, static_cast<double>(x), static_cast<double>(y)));
      }
    }
  }
  for (float& v : frame.pixels) {
    v += static_cast<float>(rng.gaussian(0.0, regime.noise_sd));
  }
  return frame;
}

}  // namespace fairdms::datagen
