// Ablation: the versioned model plane (ModelZoo + ModelCache + parallel
// ranking) against a remotely hosted store at ~1k zoo models.
//
//   (1) foundation load, cold vs warm: fetch_cached() latency and
//       RemoteLink traffic on the first load of a model vs the repeat. The
//       repeat must move zero bytes and zero requests — the entire record
//       is served from the parameter-blob cache.
//   (2) recommend (rank), cold vs warm, sequential vs parallel: per-call
//       latency and link bytes of ranking the full zoo. A warm rank moves
//       scalars only (no PDF payloads), and the parallel path returns the
//       identical ordering (pinned by test_model_cache) faster on
//       multi-core hosts.
//   (3) byte-budget pressure: hit rate and evictions when the blob working
//       set exceeds the cache budget — the knob behind
//       DataServiceConfig.model_cache_bytes.
//
// The zoo is synthetic (random PDFs, fixed-size weight blobs): this bench
// measures the registry and its cache, not training. The RemoteLink uses
// the paper's remote-store profile (120us RTT, ~50Gb/s effective).
//
// Run with `abl_zoo small` for the CI smoke preset; the default full
// preset is what EXPERIMENTS.md records.
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fairms/zoo.hpp"
#include "store/docstore.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace {

constexpr std::uint64_t kSeed = 7171;

struct Preset {
  const char* name;
  std::size_t n_models;
  std::size_t pdf_width;
  std::size_t blob_bytes;
  std::size_t fetch_probes;   ///< distinct models fetched in section (1)
  std::size_t rank_repeats;   ///< rank calls averaged in section (2)
};

Preset full_preset() { return {"full", 1024, 16, 64 * 1024, 64, 8}; }
Preset small_preset() { return {"small", 128, 8, 16 * 1024, 16, 4}; }

std::vector<double> random_pdf(fairdms::util::Rng& rng, std::size_t width) {
  std::vector<double> pdf(width);
  for (double& v : pdf) v = rng.uniform();
  pdf[rng.uniform_index(width)] += 0.5;
  return pdf;
}

struct LinkDelta {
  std::uint64_t requests = 0;
  std::uint64_t bytes = 0;
};

template <typename Fn>
LinkDelta measure_link(const fairdms::store::DocStore& db, Fn&& fn) {
  const auto req = db.link().requests();
  const auto bytes = db.link().bytes_moved();
  fn();
  return {db.link().requests() - req, db.link().bytes_moved() - bytes};
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fairdms;
  const bool small = argc > 1 && std::strcmp(argv[1], "small") == 0;
  const Preset preset = small ? small_preset() : full_preset();
  bench::print_header(
      "Ablation: versioned model plane (ModelZoo + ModelCache)",
      std::string("cold vs warm fetch/recommend at scale (preset: ") +
          preset.name + ", models: " + std::to_string(preset.n_models) +
          ", blob: " + std::to_string(preset.blob_bytes / 1024) +
          " KiB, hw threads: " +
          std::to_string(std::thread::hardware_concurrency()) + ")");

  // The paper's remote-store profile: both MongoDB and NFS live behind a
  // 100 GbE NIC on another node.
  store::DocStore db(store::RemoteLinkConfig{.latency_seconds = 120e-6,
                                             .bandwidth_bytes_per_s = 6e9});
  fairms::ModelZoo zoo(db);
  util::Rng rng(kSeed);
  std::vector<store::DocId> ids;
  ids.reserve(preset.n_models);
  {
    std::vector<std::uint8_t> blob(preset.blob_bytes);
    for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_index(256));
    util::WallTimer timer;
    for (std::size_t i = 0; i < preset.n_models; ++i) {
      blob[0] = static_cast<std::uint8_t>(i);  // cheap per-model variation
      ids.push_back(zoo.publish("braggnn", "zoo_" + std::to_string(i),
                                random_pdf(rng, preset.pdf_width), blob));
    }
    std::printf("published %zu models in %.2f s (%.1f MiB of blobs)\n\n",
                preset.n_models, timer.seconds(),
                static_cast<double>(preset.n_models * preset.blob_bytes) /
                    (1024.0 * 1024.0));
  }

  // ---- (1) foundation load: cold vs warm -----------------------------------
  std::printf("(1) foundation load (fetch_cached): cold vs warm over %zu "
              "models\n", preset.fetch_probes);
  bench::print_row("pass", "avg_ms", "KiB/fetch", "req/fetch");
  std::vector<store::DocId> probes;
  // Distinct models, spread across the zoo: every cold fetch is a real miss.
  const std::size_t stride = ids.size() / preset.fetch_probes;
  for (std::size_t i = 0; i < preset.fetch_probes; ++i) {
    probes.push_back(ids[i * stride]);
  }
  for (const bool warm : {false, true}) {
    if (!warm) zoo.cache().clear();  // publish pre-warmed; measure true cold
    util::WallTimer timer;
    LinkDelta delta = measure_link(db, [&] {
      for (const auto id : probes) {
        const auto record = zoo.fetch_cached(id);
        bench::do_not_optimize(record);
      }
    });
    const double n = static_cast<double>(probes.size());
    bench::print_row(warm ? "warm" : "cold", timer.seconds() * 1e3 / n,
                     static_cast<double>(delta.bytes) / n / 1024.0,
                     static_cast<double>(delta.requests) / n);
  }

  // ---- (2) recommend: cold vs warm, sequential vs parallel -----------------
  std::printf("\n(2) rank over the full zoo: per-call latency and link "
              "traffic (%zu repeats)\n", preset.rank_repeats);
  bench::print_row("mode", "avg_ms", "KiB/call", "req/call");
  const auto query = random_pdf(rng, preset.pdf_width);
  const auto measure_rank = [&](const char* label,
                                fairms::ModelManager& manager,
                                bool clear_first, std::size_t repeats) {
    if (clear_first) zoo.cache().clear();
    util::WallTimer timer;
    LinkDelta delta = measure_link(db, [&] {
      for (std::size_t r = 0; r < repeats; ++r) {
        const auto ranked = manager.rank("braggnn", query);
        bench::do_not_optimize(ranked);
      }
    });
    const double n = static_cast<double>(repeats);
    bench::print_row(label, timer.seconds() * 1e3 / n,
                     static_cast<double>(delta.bytes) / n / 1024.0,
                     static_cast<double>(delta.requests) / n);
  };
  fairms::ModelManager sequential(
      zoo, 1.0, /*parallel_rank_threshold=*/preset.n_models + 1);
  fairms::ModelManager parallel(zoo, 1.0, /*parallel_rank_threshold=*/1);
  measure_rank("cold_seq", sequential, /*clear_first=*/true, 1);
  measure_rank("warm_seq", sequential, /*clear_first=*/false,
               preset.rank_repeats);
  measure_rank("warm_par", parallel, /*clear_first=*/false,
               preset.rank_repeats);

  // ---- (3) byte-budget pressure --------------------------------------------
  std::printf("\n(3) budget pressure: fetch every model twice under "
              "shrinking cache budgets\n");
  bench::print_row("budget_MiB", "hit_rate", "evictions", "resident_MiB");
  const std::size_t working_set = preset.n_models * preset.blob_bytes;
  for (const double fraction : {2.0, 0.5, 0.1}) {
    const auto budget =
        static_cast<std::size_t>(static_cast<double>(working_set) * fraction);
    fairms::ModelZoo budgeted(db, budget);
    budgeted.cache().clear();
    for (int pass = 0; pass < 2; ++pass) {
      for (const auto id : ids) {
        const auto record = budgeted.fetch_cached(id);
        bench::do_not_optimize(record);
      }
    }
    const auto stats = budgeted.cache().stats();
    const double hit_rate =
        static_cast<double>(stats.hits) /
        static_cast<double>(stats.hits + stats.misses);
    bench::print_row(static_cast<double>(budget) / (1024.0 * 1024.0),
                     hit_rate, static_cast<std::size_t>(stats.evictions),
                     static_cast<double>(stats.resident_bytes) /
                         (1024.0 * 1024.0));
  }

  bench::print_footer(
      "a warm foundation load moves zero link bytes and a warm rank moves "
      "scalar projections only — the remote store drops out of the serving "
      "hot path entirely once the cache holds the working set, and the "
      "parallel rank keeps the JSD sweep off the critical path on "
      "multi-core hosts");
  return 0;
}
