// Figure 10: prediction error vs JSD dataset distance for BraggNN over a
// *bimodal* HEDM timeline (a deformation event splits the zoo into two
// regimes). For each of four test datasets, every zoo model is scored by
// (a) its prediction error on the test data and (b) the JSD between its
// training-data distribution and the test data's distribution. The paper's
// claim: the two are positively correlated, so JSD ranking finds good
// foundations without running inference.
#include <cstdio>
#include <vector>

#include "datagen/bragg.hpp"
#include "util/stats.hpp"
#include "zoo_common.hpp"

namespace {
constexpr std::size_t kZooModels = 8;
constexpr std::size_t kDeformationScan = 4;  // bimodal split
constexpr std::size_t kEvalSamples = 96;
constexpr std::uint64_t kSeed = 1010;
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Fig. 10",
                      "BraggNN: prediction error vs JSD dataset distance "
                      "(bimodal timeline)");

  const auto timeline = bench::standard_timeline(16, kDeformationScan);
  bench::ZooSpec spec;
  spec.architecture = "braggnn";
  spec.samples_per_dataset = 160;
  spec.zoo_train_epochs = 30;  // zoo models trained to (near) convergence
  spec.seed = kSeed;
  auto harness = bench::build_zoo(
      spec, kZooModels, [&](std::size_t i, std::size_t n) {
        return timeline.dataset_at(i, n, kSeed);
      });

  const std::size_t test_scans[4] = {1, 3, 5, 7};
  std::vector<double> all_jsd, all_err;
  for (const std::size_t scan : test_scans) {
    const nn::Batchset test =
        timeline.dataset_at(scan, kEvalSamples, kSeed + 77);
    const auto pdf = harness.ds->distribution(test.xs);
    std::printf("\ntest dataset @ scan %zu (%s deformation)\n", scan,
                scan < kDeformationScan ? "before" : "after");
    bench::print_row("zoo_model", "jsd_distance", "error_px");
    std::vector<double> jsds, errs;
    for (std::size_t m = 0; m < kZooModels; ++m) {
      const auto record = harness.zoo->fetch(harness.model_ids[m]);
      const double jsd =
          fairms::jensen_shannon_divergence(pdf, record->train_pdf);
      auto model = bench::materialize(harness, harness.model_ids[m], spec);
      const nn::Tensor pred = model.net.forward(test.xs, nn::Mode::kEval);
      double err = 0.0;
      for (std::size_t i = 0; i < kEvalSamples; ++i) {
        err += datagen::bragg_pixel_error(pred, test.ys, 15, i);
      }
      err /= static_cast<double>(kEvalSamples);
      bench::print_row(m, jsd, err);
      jsds.push_back(jsd);
      errs.push_back(err);
      all_jsd.push_back(jsd);
      all_err.push_back(err);
    }
    std::printf("    dataset Pearson(error, jsd) = %.3f\n",
                util::pearson(jsds, errs));
  }
  std::printf("\noverall Pearson(error, jsd) = %.3f over %zu points\n",
              util::pearson(all_jsd, all_err), all_jsd.size());
  bench::print_footer(
      "error and dataset distance are positively correlated (bimodal "
      "clusters visible as two JSD groups) — JSD ranking selects good "
      "fine-tuning foundations without inference");
  return 0;
}
