// store_matrix — per-backend CRUD micro-matrix for the document store.
//
// Runs the same single-threaded CRUD sequence against every cell of a
// (storage engine x shard count) grid on a fresh collection: insert,
// secondary-index backfill, point reads, projected batch reads, field
// updates, indexed lookups, deletes, compaction, and (durable engines
// only) a cold reopen that replays the on-disk segments. Single-threaded
// on purpose: with the RemoteLink wire model disabled, the numbers isolate
// per-engine storage cost — the MemEngine/LogEngine gap IS the price of
// durability, and the shard axis shows the engine seam composing with
// PR-4 sharding.
//
// `--json PATH` writes the machine-readable report CI archives as
// BENCH_store_*.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "store/docstore.hpp"
#include "util/rng.hpp"

namespace {

using namespace fairdms;
using bench::print_footer;
using bench::print_header;
using bench::print_row;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kSeed = 6161;

struct Preset {
  const char* name;
  std::size_t docs;           ///< documents inserted per cell
  std::size_t blob_bytes;     ///< binary payload per document
  std::size_t point_reads;
  std::size_t batch_reads;    ///< find_many calls (64 ids, projected)
  std::size_t updates;
  std::size_t lookups;        ///< indexed find_eq calls
  std::vector<std::size_t> shard_counts;
};

Preset small_preset() { return {"small", 2000, 256, 4000, 50, 2000, 400,
                                {1, 4}}; }
Preset full_preset() { return {"full", 10000, 512, 20000, 200, 10000, 2000,
                               {1, 2, 8}}; }

store::Value random_doc(util::Rng& rng, std::size_t blob_bytes) {
  store::Object obj;
  obj.emplace("cluster",
              store::Value(static_cast<std::int64_t>(rng.uniform_index(16))));
  obj.emplace("tag", store::Value("tag_" +
                                  std::to_string(rng.uniform_index(1000))));
  store::Binary blob(blob_bytes);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  obj.emplace("blob", store::Value(std::move(blob)));
  return store::Value(std::move(obj));
}

struct Row {
  std::string engine;
  std::size_t shards;
  std::string op;
  std::size_t ops;
  double seconds;
  [[nodiscard]] double ops_per_s() const {
    return seconds > 0.0 ? static_cast<double>(ops) / seconds : 0.0;
  }
};

class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  Clock::time_point start_;
};

/// One grid cell: the full CRUD sequence on a fresh collection.
void run_cell(store::EngineKind kind, std::size_t shards,
              const Preset& preset, const std::string& data_root,
              std::vector<Row>& rows) {
  store::StorageEngineConfig engine;
  engine.kind = kind;
  const std::string dir =
      data_root + "/cell_" + store::to_string(kind) + "_" +
      std::to_string(shards);
  if (kind == store::EngineKind::kLog) engine.directory = dir;

  util::Rng rng(kSeed);
  std::vector<store::Value> docs;
  docs.reserve(preset.docs);
  for (std::size_t i = 0; i < preset.docs; ++i) {
    docs.push_back(random_doc(rng, preset.blob_bytes));
  }

  auto col = std::make_unique<store::Collection>("bench", nullptr, shards,
                                                 engine);
  const auto record = [&](const char* op, std::size_t ops, double seconds) {
    rows.push_back(Row{store::to_string(kind), shards, op, ops, seconds});
    print_row(store::to_string(kind), shards, op, ops, seconds,
              rows.back().ops_per_s());
  };

  std::vector<store::DocId> ids;
  ids.reserve(preset.docs);
  {
    Timer t;
    for (auto& doc : docs) ids.push_back(col->insert_one(std::move(doc)));
    record("insert", preset.docs, t.seconds());
  }
  {
    Timer t;
    col->create_index("cluster");
    record("index_backfill", preset.docs, t.seconds());
  }
  {
    Timer t;
    std::size_t found = 0;
    for (std::size_t i = 0; i < preset.point_reads; ++i) {
      const auto doc = col->find_by_id(ids[rng.uniform_index(ids.size())]);
      found += doc.has_value() ? 1 : 0;
    }
    bench::do_not_optimize(found);
    record("point_read", preset.point_reads, t.seconds());
  }
  {
    const std::vector<std::string> fields = {"cluster", "tag"};
    Timer t;
    std::size_t got = 0;
    for (std::size_t i = 0; i < preset.batch_reads; ++i) {
      std::vector<store::DocId> batch(64);
      for (auto& id : batch) id = ids[rng.uniform_index(ids.size())];
      const auto out = col->find_many(batch, fields);
      got += out.size();
    }
    bench::do_not_optimize(got);
    record("batch_read64", preset.batch_reads, t.seconds());
  }
  {
    Timer t;
    for (std::size_t i = 0; i < preset.updates; ++i) {
      col->update_field(
          ids[rng.uniform_index(ids.size())], "tag",
          store::Value("tag_" + std::to_string(rng.uniform_index(1000))));
    }
    record("update_field", preset.updates, t.seconds());
  }
  {
    Timer t;
    std::size_t matched = 0;
    for (std::size_t i = 0; i < preset.lookups; ++i) {
      matched += col->find_eq("cluster",
                              store::Value(static_cast<std::int64_t>(
                                  rng.uniform_index(16))))
                     .size();
    }
    bench::do_not_optimize(matched);
    record("indexed_lookup", preset.lookups, t.seconds());
  }
  {
    const std::size_t removals = preset.docs / 10;
    Timer t;
    for (std::size_t i = 0; i < removals; ++i) {
      col->remove_one(ids[i * 10]);
    }
    record("remove", removals, t.seconds());
  }
  {
    Timer t;
    col->compact();
    record("compact", col->size(), t.seconds());
  }
  if (kind == store::EngineKind::kLog) {
    // Cold reopen: drop the in-memory state and replay the segments.
    const std::size_t live = col->size();
    col.reset();
    Timer t;
    col = std::make_unique<store::Collection>("bench", nullptr, shards,
                                              engine);
    record("reopen_replay", col->size(), t.seconds());
    if (col->size() != live) {
      std::fprintf(stderr, "store_matrix: reopen lost documents (%zu -> %zu)\n",
                   live, col->size());
      std::exit(1);
    }
  }
}

void write_json(const char* path, const Preset& preset,
                const std::vector<Row>& rows) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "store_matrix: cannot write %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n  \"bench\": \"store_matrix\",\n");
  std::fprintf(f, "  \"preset\": \"%s\",\n", preset.name);
  std::fprintf(f, "  \"docs\": %zu,\n", preset.docs);
  std::fprintf(f, "  \"blob_bytes\": %zu,\n", preset.blob_bytes);
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"engine\": \"%s\", \"shards\": %zu, \"op\": \"%s\", "
                 "\"ops\": %zu, \"seconds\": %.6f, \"ops_per_s\": %.1f}%s\n",
                 r.engine.c_str(), r.shards, r.op.c_str(), r.ops, r.seconds,
                 r.ops_per_s(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("json report written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  Preset preset = full_preset();
  const char* json_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--preset") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (std::strcmp(name, "small") == 0) preset = small_preset();
      else if (std::strcmp(name, "full") == 0) preset = full_preset();
      else {
        std::fprintf(stderr, "unknown preset: %s\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: store_matrix [--preset small|full] [--json PATH]\n");
      return 2;
    }
  }

  print_header("store_matrix",
               "per-engine CRUD cost grid (engine x shards), preset " +
                   std::string(preset.name));
  print_row("engine", "shards", "op", "ops", "seconds", "ops/s");

  const std::string data_root =
      (std::filesystem::temp_directory_path() /
       ("fairdms_store_matrix_" + std::to_string(::getpid())))
          .string();
  std::filesystem::create_directories(data_root);

  std::vector<Row> rows;
  for (const store::EngineKind kind :
       {store::EngineKind::kMem, store::EngineKind::kLog}) {
    for (const std::size_t shards : preset.shard_counts) {
      run_cell(kind, shards, preset, data_root, rows);
    }
  }
  std::filesystem::remove_all(data_root);

  if (json_path != nullptr) write_json(json_path, preset, rows);
  print_footer(
      "mem vs log on the same row is the storage cost of durability; "
      "down a column, the engine seam composes with sharding unchanged");
  return 0;
}
