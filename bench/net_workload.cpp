// Cross-process closed-loop load generator for the wire serving front-end
// (ROADMAP open item 1: "multi-process serving front-end").
//
// Where bench/mixed_workload.cpp drives the DataService in-process with
// threads, this bench forks N *client processes*, each holding one TCP
// connection to a net::Server, and drives the same TPC-style closed-loop
// mix over the wire:
//   lookup_or_label — pipelined bursts of label frames (the wire analogue
//                     of the in-process future burst)
//   lookup          — PDF-matched dataset retrieval
//   rank            — foundation-model recommendation
//   request_retrain — the Fig. 16 drift probe (coalescing visible on the
//                     wire as accepted=false)
//   stats           — operator-plane reads, served inline
//
// The deck/skew machinery (exact-proportion shuffled decks, NURand hot-key
// skew, per-op p50/p99/p999 tallies) is shared with mixed_workload via
// bench_common.hpp, so the two drivers offer comparable mixes by
// construction. Every child rebuilds its workload deterministically from
// (preset, seed, client index): nothing but the port crosses the fork.
//
// Two modes:
//   self-host (default) — fork the clients FIRST (so no thread ever crosses
//     a fork), then build the demo world + net::Server in the parent and
//     release the clients with the ephemeral port.
//   --connect PORT      — drive an external server (examples/serve); the
//     admission ledger is read over the wire (stats deltas) in both modes.
//
// `--require-graceful` turns the run into a robustness gate: nonzero exit
// when any client crashed, a connection died, the per-client or wire-level
// admission ledger fails to reconcile, the malformed-frame probe killed a
// connection, or 100% of user-plane traffic was shed. `--json PATH` writes
// the machine-readable BENCH_net_*.json report CI archives.
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "service/data_service.hpp"
#include "util/timer.hpp"

namespace {

using namespace fairdms;

constexpr std::uint64_t kSeed = 6161;
constexpr std::size_t kQueryPools = 16;
constexpr std::size_t kNurandA = 7;
constexpr std::size_t kRetrainProbes = 4;

enum class Op : std::size_t {
  kLabel = 0,
  kLookup,
  kRecommend,
  kRetrain,
  kStats,
  kCount,
};
constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

const char* op_name(std::size_t op) {
  static const char* kNames[kOpCount] = {"lookup_or_label", "lookup", "rank",
                                         "request_retrain", "stats"};
  return kNames[op];
}

struct Preset {
  const char* name;
  std::size_t history;          ///< self-host world size
  std::size_t embed_epochs;
  std::size_t clients;          ///< forked client processes
  std::size_t txns_per_client;
  std::size_t batch;            ///< rows per query tensor
  std::size_t workers;          ///< self-host service workers
  std::size_t max_pending;      ///< self-host admission bound
  std::size_t burst;            ///< pipelined label frames per label txn
  std::size_t weights[kOpCount];  ///< percent: label/lookup/rank/retrain/stats
};

Preset small_preset() {
  return {"small", 256, 2, 4, 40, 8, 4, 64, 4, {50, 20, 15, 5, 10}};
}
Preset full_preset() {
  return {"full", 512, 2, 6, 120, 8, 4, 128, 8, {50, 20, 15, 5, 10}};
}

using bench::OpTally;
using bench::pct_ms;

/// Everything a child sends back through its result pipe.
struct ClientResult {
  OpTally ops[kOpCount];
  bool probe_ok = false;  ///< malformed probe answered + connection survived
  bool transport_ok = true;
};

net::Bytes serialize_result(const ClientResult& r) {
  net::WireWriter w;
  w.u8(r.probe_ok ? 1 : 0);
  w.u8(r.transport_ok ? 1 : 0);
  for (const auto& t : r.ops) {
    w.u64(t.submitted);
    w.u64(t.answered);
    w.u64(t.shed);
    w.u32(static_cast<std::uint32_t>(t.latencies.size()));
    for (const double s : t.latencies) w.f64(s);
  }
  return w.take();
}

bool deserialize_result(const net::Bytes& bytes, ClientResult* r) {
  net::WireReader reader(bytes);
  std::uint8_t probe = 0;
  std::uint8_t transport = 0;
  if (!reader.u8(&probe) || !reader.u8(&transport)) return false;
  r->probe_ok = probe != 0;
  r->transport_ok = transport != 0;
  for (auto& t : r->ops) {
    std::uint32_t n = 0;
    if (!reader.u64(&t.submitted) || !reader.u64(&t.answered) ||
        !reader.u64(&t.shed) || !reader.u32(&n)) {
      return false;
    }
    t.latencies.resize(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      if (!reader.f64(&t.latencies[i])) return false;
    }
  }
  return reader.done();
}

/// The child's whole life: rebuild the deterministic workload, connect,
/// drive the deck closed-loop, probe the malformed path, ship the tallies
/// back. Returns the process exit code.
int run_child(const Preset& preset, std::size_t index, int port_fd,
              int result_fd) {
  // Deterministic from (preset, kSeed, index): the parent never ships data.
  const auto timeline = bench::standard_timeline(12, 7);
  std::vector<nn::Batchset> pools;
  pools.reserve(kQueryPools);
  for (std::size_t i = 0; i < kQueryPools; ++i) {
    pools.push_back(
        timeline.dataset_at(2 + i % 4, preset.batch, kSeed + 10 + i));
  }
  std::vector<nn::Batchset> probes;
  probes.reserve(kRetrainProbes);
  for (std::size_t i = 0; i < kRetrainProbes; ++i) {
    probes.push_back(timeline.dataset_at(8 + i % 3, 24, kSeed + 50 + i));
  }
  util::Rng rng(kSeed);
  const std::size_t nurand_c = rng.uniform_index(kQueryPools);
  util::Rng client_rng = rng.fork(2000 + index);
  const std::vector<std::size_t> deck =
      bench::build_deck(client_rng, preset.txns_per_client, preset.weights,
                        static_cast<std::size_t>(Op::kLabel));

  // The parent writes the port only once the server is accepting: reading
  // it doubles as the start barrier.
  std::uint8_t port_bytes[2];
  if (!net::read_exact(port_fd, port_bytes, 2)) {
    std::perror("net_workload client: port pipe read");
    return 3;
  }
  const auto port = static_cast<std::uint16_t>(
      port_bytes[0] | (static_cast<std::uint16_t>(port_bytes[1]) << 8));

  net::Client client;
  if (!client.connect_retry("127.0.0.1", port, 30.0)) return 4;

  ClientResult result;
  for (const std::size_t op_index : deck) {
    OpTally& tally = result.ops[op_index];
    const std::size_t pool =
        bench::nurand(client_rng, kNurandA, kQueryPools, nurand_c);
    util::WallTimer timer;
    switch (static_cast<Op>(op_index)) {
      case Op::kLabel: {
        // Pipelined burst: `burst` frames on the wire before the first
        // read, then drain. Latency is burst-start to each response, and
        // responses may return in any order (correlation ids match them).
        std::vector<std::uint64_t> cids;
        cids.reserve(preset.burst);
        for (std::size_t b = 0; b < preset.burst; ++b) {
          const std::uint64_t cid = client.send_label(
              service::LabelRequest{pools[pool].xs, 1e9, nullptr});
          if (cid == 0) {
            result.transport_ok = false;
            break;
          }
          cids.push_back(cid);
        }
        for (std::size_t b = 0; b < cids.size(); ++b) {
          const auto reply = client.recv_reply();
          if (!reply) {
            result.transport_ok = false;
            break;
          }
          ++tally.submitted;
          if (reply->header.status == service::ServeStatus::kOk) {
            ++tally.answered;
            tally.latencies.push_back(timer.seconds());
          } else {
            ++tally.shed;
          }
        }
        break;
      }
      case Op::kLookup: {
        const auto response = client.lookup(
            service::LookupRequest{pools[pool].xs, kSeed + pool});
        ++tally.submitted;
        if (!response) {
          result.transport_ok = false;
        } else if (response->status == service::ServeStatus::kOk) {
          ++tally.answered;
          tally.latencies.push_back(timer.seconds());
        } else {
          ++tally.shed;
        }
        break;
      }
      case Op::kRecommend: {
        const auto response = client.recommend(
            service::RecommendRequest{"braggnn", pools[pool].xs});
        ++tally.submitted;
        if (!response) {
          result.transport_ok = false;
        } else if (response->status == service::ServeStatus::kOk) {
          ++tally.answered;
          tally.latencies.push_back(timer.seconds());
        } else {
          ++tally.shed;
        }
        break;
      }
      case Op::kRetrain: {
        // answered = the check was accepted; shed = coalesced into an
        // in-flight check (same semantics as the in-process driver).
        const auto accepted = client.request_retrain(
            probes[client_rng.uniform_index(kRetrainProbes)].xs);
        ++tally.submitted;
        if (!accepted) {
          result.transport_ok = false;
        } else if (*accepted) {
          ++tally.answered;
          tally.latencies.push_back(timer.seconds());
        } else {
          ++tally.shed;
        }
        break;
      }
      case Op::kStats: {
        const auto stats = client.stats();
        ++tally.submitted;
        if (!stats) {
          result.transport_ok = false;
        } else {
          ++tally.answered;
          tally.latencies.push_back(timer.seconds());
        }
        break;
      }
      case Op::kCount:
        break;
    }
    if (!result.transport_ok) break;
  }

  // Malformed-frame probe: a valid envelope around garbage bytes must be
  // answered kMalformedRequest and the connection must stay usable — the
  // cross-process half of the hardening suite in tests/test_net.cpp.
  if (result.transport_ok) {
    const net::Bytes garbage = {0xde, 0xad, 0xbe, 0xef};
    if (client.send_raw(net::encode_frame(net::Op::kLabel,
                                          service::ServeStatus::kOk,
                                          /*correlation_id=*/987654321,
                                          garbage))) {
      const auto reply = client.recv_reply();
      result.probe_ok =
          reply.has_value() &&
          reply->header.status == service::ServeStatus::kMalformedRequest &&
          reply->header.correlation_id == 987654321 &&
          client.stats().has_value();
    }
  }

  const net::Bytes blob = serialize_result(result);
  net::WireWriter len;
  len.u32(static_cast<std::uint32_t>(blob.size()));
  if (!net::write_all(result_fd, len.bytes().data(), len.bytes().size()) ||
      !net::write_all(result_fd, blob.data(), blob.size())) {
    return 5;
  }
  return result.transport_ok ? 0 : 6;
}

struct StatsDelta {
  service::ServiceStats baseline;
  service::ServiceStats final;
  [[nodiscard]] std::uint64_t d(std::uint64_t service::ServiceStats::*f) const {
    return final.*f - baseline.*f;
  }
};

void write_json(const char* path, const Preset& preset, bool external,
                double wall_seconds, const ClientResult& merged,
                const StatsDelta& wire) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "net_workload: cannot open %s for writing\n", path);
    std::exit(1);
  }
  std::uint64_t txns = 0;
  for (const auto& op : merged.ops) txns += op.submitted;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"net_workload\",\n");
  std::fprintf(f, "  \"preset\": \"%s\",\n", preset.name);
  std::fprintf(f, "  \"mode\": \"%s\",\n",
               external ? "connect" : "self_host");
  std::fprintf(f, "  \"hw_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"client_processes\": %zu,\n", preset.clients);
  std::fprintf(f, "  \"burst\": %zu,\n", preset.burst);
  std::fprintf(f, "  \"wall_seconds\": %.6f,\n", wall_seconds);
  std::fprintf(f, "  \"txn_results\": %llu,\n",
               static_cast<unsigned long long>(txns));
  std::fprintf(f, "  \"ops\": {\n");
  for (std::size_t op = 0; op < kOpCount; ++op) {
    const OpTally& t = merged.ops[op];
    std::fprintf(
        f,
        "    \"%s\": {\"submitted\": %llu, \"answered\": %llu, "
        "\"shed\": %llu, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"p999_ms\": %.4f}%s\n",
        op_name(op), static_cast<unsigned long long>(t.submitted),
        static_cast<unsigned long long>(t.answered),
        static_cast<unsigned long long>(t.shed), pct_ms(t.latencies, 50),
        pct_ms(t.latencies, 99), pct_ms(t.latencies, 99.9),
        op + 1 < kOpCount ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(
      f,
      "  \"wire_stats_delta\": {\"label_requests\": %llu, "
      "\"label_answered\": %llu, \"label_shed\": %llu, "
      "\"lookup_requests\": %llu, \"recommend_requests\": %llu, "
      "\"retrain_checks\": %llu, \"retrains\": %llu, "
      "\"retrains_coalesced\": %llu},\n",
      static_cast<unsigned long long>(wire.d(&service::ServiceStats::label_requests)),
      static_cast<unsigned long long>(wire.d(&service::ServiceStats::label_answered)),
      static_cast<unsigned long long>(wire.d(&service::ServiceStats::label_shed)),
      static_cast<unsigned long long>(wire.d(&service::ServiceStats::lookup_requests)),
      static_cast<unsigned long long>(wire.d(&service::ServiceStats::recommend_requests)),
      static_cast<unsigned long long>(wire.d(&service::ServiceStats::retrain_checks)),
      static_cast<unsigned long long>(wire.d(&service::ServiceStats::retrains)),
      static_cast<unsigned long long>(wire.d(&service::ServiceStats::retrains_coalesced)));
  std::fprintf(f, "  \"queue_depth_final\": %llu\n",
               static_cast<unsigned long long>(wire.final.queue_depth));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("json report written to %s\n", path);
}

int check_graceful(const ClientResult& merged, bool children_ok,
                   std::size_t probes_ok, std::size_t clients,
                   const StatsDelta& wire) {
  int violations = 0;
  const auto fail = [&violations](const char* what) {
    std::fprintf(stderr, "GRACEFUL-DEGRADATION VIOLATION: %s\n", what);
    ++violations;
  };
  if (!children_ok) fail("a client process crashed or lost its connection");
  if (probes_ok != clients) {
    fail("a malformed-frame probe was not answered kMalformedRequest on a "
         "still-usable connection");
  }
  // Client side: every submitted request got exactly one explicit outcome.
  for (std::size_t op = 0; op < kOpCount; ++op) {
    const OpTally& t = merged.ops[op];
    if (t.submitted != t.answered + t.shed) {
      fail("client-side submitted != answered + shed");
      break;
    }
  }
  const std::uint64_t user_answered =
      merged.ops[0].answered + merged.ops[1].answered +
      merged.ops[2].answered;
  if (user_answered == 0) fail("100% of user-plane traffic was shed");
  // Wire ledger: the service's counters, read over the stats endpoint, must
  // reconcile exactly with what the client processes observed. The
  // malformed probes never reach the service, so they must NOT appear.
  using S = service::ServiceStats;
  if (wire.d(&S::label_requests) != merged.ops[0].submitted ||
      wire.d(&S::label_answered) != merged.ops[0].answered ||
      wire.d(&S::label_shed) != merged.ops[0].shed) {
    fail("wire label ledger disagrees with client processes");
  }
  if (wire.d(&S::lookup_requests) != merged.ops[1].submitted ||
      wire.d(&S::lookup_answered) != merged.ops[1].answered ||
      wire.d(&S::lookup_shed) != merged.ops[1].shed) {
    fail("wire lookup ledger disagrees with client processes");
  }
  if (wire.d(&S::recommend_requests) != merged.ops[2].submitted ||
      wire.d(&S::recommend_answered) != merged.ops[2].answered ||
      wire.d(&S::recommend_shed) != merged.ops[2].shed) {
    fail("wire recommend ledger disagrees with client processes");
  }
  if (wire.final.queue_depth != 0) {
    fail("pending queue did not drain after the run");
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  // Coordination pipes can lose their peer if a child crashes; surface that
  // as a failed write, not a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);
  Preset preset = small_preset();
  const char* json_path = nullptr;
  bool require_graceful = false;
  int connect_port = 0;  // 0 => self-host
  for (int i = 1; i < argc; ++i) {
    const auto pick = [&preset](const char* name) {
      if (std::strcmp(name, "small") == 0) preset = small_preset();
      else if (std::strcmp(name, "full") == 0) preset = full_preset();
      else {
        std::fprintf(stderr, "unknown preset: %s\n", name);
        std::exit(2);
      }
    };
    if (std::strcmp(argv[i], "--preset") == 0 && i + 1 < argc) {
      pick(argv[++i]);
    } else if (std::strcmp(argv[i], "--connect") == 0 && i + 1 < argc) {
      connect_port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--require-graceful") == 0) {
      require_graceful = true;
    } else if (argv[i][0] != '-') {
      pick(argv[i]);
    } else {
      std::fprintf(stderr,
                   "usage: net_workload [--preset small|full] "
                   "[--connect PORT] [--json PATH] [--require-graceful]\n");
      return 2;
    }
  }
  const bool external = connect_port != 0;

  bench::print_header(
      "Cross-process wire-serving workload",
      std::string("closed-loop mix over TCP, forked client processes "
                  "(preset: ") +
          preset.name + ", mode: " + (external ? "connect" : "self-host") +
          ", hw threads: " +
          std::to_string(std::thread::hardware_concurrency()) + ")");
  std::printf(
      "mix: lookup_or_label %zu%% / lookup %zu%% / rank %zu%% / "
      "request_retrain %zu%% / stats %zu%% — %zu client processes x %zu "
      "txns, burst %zu\n",
      preset.weights[0], preset.weights[1], preset.weights[2],
      preset.weights[3], preset.weights[4], preset.clients,
      preset.txns_per_client, preset.burst);
  std::fflush(stdout);

  // Fork FIRST: no thread (and no used thread pool) may exist on either
  // side of a fork. The children block reading the port; the parent builds
  // the world afterwards.
  struct Child {
    pid_t pid = -1;
    int port_wr = -1;
    int result_rd = -1;
  };
  std::vector<Child> children(preset.clients);
  for (std::size_t c = 0; c < preset.clients; ++c) {
    int port_pipe[2];
    int result_pipe[2];
    if (::pipe(port_pipe) != 0 || ::pipe(result_pipe) != 0) {
      std::perror("pipe");
      return 1;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ::close(port_pipe[1]);
      ::close(result_pipe[0]);
      for (std::size_t p = 0; p < c; ++p) {
        ::close(children[p].port_wr);
        ::close(children[p].result_rd);
      }
      const int code = run_child(preset, c, port_pipe[0], result_pipe[1]);
      ::_exit(code);
    }
    ::close(port_pipe[0]);
    ::close(result_pipe[1]);
    children[c] = {pid, port_pipe[1], result_pipe[0]};
  }

  // --- the server side (self-host) or none (--connect) ----------------------
  std::optional<store::DocStore> db;
  std::optional<fairds::FairDS> ds;
  std::optional<fairms::ModelZoo> zoo;
  std::optional<fairms::ModelManager> manager;
  std::optional<service::DataService> service;
  std::optional<net::Server> server;
  std::uint16_t port = static_cast<std::uint16_t>(connect_port);
  if (!external) {
    const auto timeline = bench::standard_timeline(12, 7);
    const nn::Batchset history = timeline.dataset_at(2, preset.history, kSeed);
    db.emplace();
    fairds::FairDSConfig config;
    config.embedding_dim = 12;
    config.n_clusters = 8;
    config.embed_train.epochs = preset.embed_epochs;
    config.certainty_threshold = 0.8;
    config.seed = kSeed;
    config.store_shards = 4;
    ds.emplace(config, *db);
    ds->train_system(history.xs);
    ds->ingest(history.xs, history.ys, "history");
    zoo.emplace(*db);
    for (std::size_t m = 0; m < 4; ++m) {
      zoo->publish("braggnn", "seed_" + std::to_string(m),
                   ds->distribution(timeline.dataset_at(2 + m, 32, kSeed + m).xs),
                   std::vector<std::uint8_t>(4096, 0x42));
    }
    manager.emplace(*zoo, 1.0);
    service.emplace(
        *ds,
        service::DataServiceConfig{.workers = preset.workers,
                                   .store_shards = 4,
                                   .max_pending = preset.max_pending},
        &*manager);
    const std::size_t label_width = ds->snapshot()->label_width();
    net::ServerConfig server_config;
    server_config.fallback_labeler = [label_width](const nn::Tensor& xs) {
      return nn::Tensor({xs.dim(0), label_width});
    };
    server.emplace(*service, server_config);
    if (!server->ok()) {
      std::fprintf(stderr, "net_workload: cannot start server\n");
      return 1;
    }
    port = server->port();
  }

  // Baseline over the wire, then release the barrier.
  net::Client observer;
  if (!observer.connect_retry("127.0.0.1", port, 30.0)) {
    std::fprintf(stderr, "net_workload: cannot connect to port %u\n",
                 static_cast<unsigned>(port));
    return 1;
  }
  const auto baseline = observer.stats();
  if (!baseline) {
    std::fprintf(stderr, "net_workload: stats endpoint failed\n");
    return 1;
  }

  util::WallTimer wall;
  for (auto& child : children) {
    const std::uint8_t port_bytes[2] = {
        static_cast<std::uint8_t>(port & 0xff),
        static_cast<std::uint8_t>(port >> 8)};
    if (!net::write_all(child.port_wr, port_bytes, 2)) {
      std::fprintf(stderr, "net_workload: a client died before the start\n");
    }
    ::close(child.port_wr);
  }

  // Collect result blobs, then reap. The blobs fit comfortably in a pipe
  // buffer, so the children never block on us.
  std::vector<ClientResult> results(preset.clients);
  bool children_ok = true;
  for (std::size_t c = 0; c < preset.clients; ++c) {
    std::uint8_t len_bytes[4];
    net::Bytes blob;
    bool ok = net::read_exact(children[c].result_rd, len_bytes, 4);
    if (ok) {
      std::uint32_t len = 0;
      std::memcpy(&len, len_bytes, 4);
      blob.resize(len);
      ok = net::read_exact(children[c].result_rd, blob.data(), len) &&
           deserialize_result(blob, &results[c]);
    }
    ::close(children[c].result_rd);
    if (!ok) {
      children_ok = false;
      results[c].transport_ok = false;
    }
  }
  const double wall_seconds = wall.seconds();
  for (auto& child : children) {
    int status = 0;
    ::waitpid(child.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      children_ok = false;
      if (WIFEXITED(status)) {
        std::fprintf(stderr, "net_workload: client %d exited with code %d\n",
                     static_cast<int>(child.pid), WEXITSTATUS(status));
      } else if (WIFSIGNALED(status)) {
        std::fprintf(stderr, "net_workload: client %d killed by signal %d\n",
                     static_cast<int>(child.pid), WTERMSIG(status));
      }
    }
  }

  // Retrain checks run async on the system plane: poll the wire stats until
  // every accepted check has executed (bounded), then read the final ledger.
  ClientResult merged;
  std::size_t probes_ok = 0;
  for (const auto& r : results) {
    for (std::size_t op = 0; op < kOpCount; ++op) merged.ops[op].merge(r.ops[op]);
    if (r.probe_ok) ++probes_ok;
    if (!r.transport_ok) merged.transport_ok = false;
  }
  const std::uint64_t accepted_retrains = merged.ops[3].answered;
  service::ServiceStats final_stats = *baseline;
  for (int attempt = 0; attempt < 300; ++attempt) {
    const auto now = observer.stats();
    if (!now) break;
    final_stats = *now;
    if (final_stats.retrain_checks - baseline->retrain_checks >=
            accepted_retrains &&
        final_stats.queue_depth == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  const StatsDelta wire{*baseline, final_stats};

  std::uint64_t txns = 0;
  for (const auto& op : merged.ops) txns += op.submitted;
  bench::print_row("op", "submitted", "answered", "shed", "p50_ms", "p99_ms",
                   "p999_ms");
  for (std::size_t op = 0; op < kOpCount; ++op) {
    const OpTally& t = merged.ops[op];
    bench::print_row(op_name(op), t.submitted, t.answered, t.shed,
                     pct_ms(t.latencies, 50), pct_ms(t.latencies, 99),
                     pct_ms(t.latencies, 99.9));
  }
  using S = service::ServiceStats;
  std::printf(
      "wall %.3fs, %.0f results/s across %zu processes; wire ledger: "
      "label %llu lookup %llu recommend %llu; retrain checks %llu "
      "(%llu trained, %llu coalesced); malformed probes ok %zu/%zu\n",
      wall_seconds, static_cast<double>(txns) / wall_seconds, preset.clients,
      static_cast<unsigned long long>(wire.d(&S::label_requests)),
      static_cast<unsigned long long>(wire.d(&S::lookup_requests)),
      static_cast<unsigned long long>(wire.d(&S::recommend_requests)),
      static_cast<unsigned long long>(wire.d(&S::retrain_checks)),
      static_cast<unsigned long long>(wire.d(&S::retrains)),
      static_cast<unsigned long long>(wire.d(&S::retrains_coalesced)),
      probes_ok, preset.clients);

  if (json_path != nullptr) {
    write_json(json_path, preset, external, wall_seconds, merged, wire);
  }

  int violations = 0;
  if (require_graceful) {
    violations =
        check_graceful(merged, children_ok, probes_ok, preset.clients, wire);
    std::printf("graceful-degradation gate: %s\n",
                violations == 0 ? "PASS" : "FAIL");
  }

  if (server) {
    server->stop();
    service->wait_idle();
  }

  bench::print_footer(
      "the wire front-end preserves the service's degradation policy across "
      "process boundaries: sheds arrive as explicit statuses, malformed "
      "frames get answered without killing the connection, and the "
      "admission ledger read over the stats endpoint reconciles exactly "
      "with what N independent client processes observed");
  return violations == 0 ? 0 : 1;
}
