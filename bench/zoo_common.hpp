// Shared zoo-building harness for the model-service figures (Figs. 10-14):
// train a fairDS system over an experiment timeline, ingest history, train
// one task model per timeline position, and publish each with its
// training-data distribution.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/fairdms.hpp"
#include "fairds/fairds.hpp"
#include "fairms/jsd.hpp"
#include "fairms/zoo.hpp"
#include "models/models.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"
#include "nn/trainer.hpp"

namespace fairdms::bench {

struct ZooSpec {
  std::string architecture = "braggnn";
  std::size_t image_size = 15;
  std::size_t n_clusters = 8;
  std::size_t samples_per_dataset = 96;
  std::size_t zoo_train_epochs = 12;
  std::size_t embed_epochs = 4;
  double learning_rate = 1e-3;
  std::uint64_t seed = 4242;
};

struct ZooHarness {
  std::unique_ptr<store::DocStore> db;
  std::unique_ptr<fairds::FairDS> ds;
  std::unique_ptr<fairms::ModelZoo> zoo;
  std::vector<store::DocId> model_ids;       ///< one per zoo dataset
  std::vector<nn::Batchset> zoo_datasets;    ///< training data per model
};

/// dataset_at(i) must return the i-th timeline dataset (xs + ys).
inline ZooHarness build_zoo(
    const ZooSpec& spec, std::size_t n_zoo_datasets,
    const std::function<nn::Batchset(std::size_t, std::size_t)>& dataset_at) {
  ZooHarness h;
  h.db = std::make_unique<store::DocStore>();

  // System plane: train the embedding + clustering on the union of all zoo
  // datasets, then ingest them as labeled history.
  for (std::size_t i = 0; i < n_zoo_datasets; ++i) {
    h.zoo_datasets.push_back(dataset_at(i, spec.samples_per_dataset));
  }
  const std::size_t per = spec.samples_per_dataset;
  const std::size_t pixels = spec.image_size * spec.image_size;
  nn::Tensor all({n_zoo_datasets * per, 1, spec.image_size, spec.image_size});
  for (std::size_t i = 0; i < n_zoo_datasets; ++i) {
    std::copy_n(h.zoo_datasets[i].xs.data(), per * pixels,
                all.data() + i * per * pixels);
  }
  fairds::FairDSConfig ds_config;
  ds_config.embedding_algorithm = "byol";
  ds_config.embedding_dim = 12;
  ds_config.image_size = spec.image_size;
  ds_config.n_clusters = spec.n_clusters;
  ds_config.embed_train.epochs = spec.embed_epochs;
  ds_config.seed = spec.seed;
  h.ds = std::make_unique<fairds::FairDS>(ds_config, *h.db);
  h.ds->train_system(all);
  for (std::size_t i = 0; i < n_zoo_datasets; ++i) {
    h.ds->ingest(h.zoo_datasets[i].xs, h.zoo_datasets[i].ys,
                 "zoo_" + std::to_string(i));
  }

  // Model zoo: one task model per dataset, trained to convergence-ish and
  // published with its training-data distribution.
  h.zoo = std::make_unique<fairms::ModelZoo>(*h.db);
  for (std::size_t i = 0; i < n_zoo_datasets; ++i) {
    models::TaskModel model = models::make_model(
        spec.architecture, spec.seed + 11 * i, spec.image_size);
    util::Rng rng(spec.seed + 101 * i);
    nn::Adam opt(model.net, spec.learning_rate);
    nn::TrainConfig config;
    config.max_epochs = spec.zoo_train_epochs;
    config.batch_size = 32;
    nn::fit(model.net, opt, h.zoo_datasets[i], h.zoo_datasets[i], config,
            rng);
    h.model_ids.push_back(h.zoo->publish(
        spec.architecture, "zoo_" + std::to_string(i),
        h.ds->distribution(h.zoo_datasets[i].xs),
        nn::save_parameters(model.net)));
  }
  return h;
}

/// Loads a zoo model back into a runnable TaskModel.
inline models::TaskModel materialize(const ZooHarness& h,
                                     store::DocId id, const ZooSpec& spec) {
  const auto record = h.zoo->fetch(id);
  models::TaskModel model = models::make_model(
      record->architecture, spec.seed, spec.image_size);
  nn::load_parameters(model.net, record->parameters);
  return model;
}

}  // namespace fairdms::bench
