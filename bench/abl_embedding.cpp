// Ablation: embedding algorithm choice (paper §IV "an example of failure").
// The paper first used an autoencoder for Bragg peaks and found it
// over-sensitive to pixel-wise differences — two physically identical peaks
// related by a rotation land far apart — and switched to BYOL trained with
// physics-inspired augmentations. This bench scores all three built-in
// embedders on:
//   (1) rotation sensitivity: distance(embed(x), embed(rot90(x))) relative
//       to the typical inter-sample distance (lower = more invariant);
//   (2) retrieval quality: pixel error of 1-NN label reuse through the
//       embedding (lower = better pseudo-labels).
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "embed/augment.hpp"
#include "embed/embedder.hpp"
#include "util/stats.hpp"

namespace {
constexpr std::size_t kHistory = 256;
constexpr std::size_t kQueries = 64;
constexpr std::uint64_t kSeed = 2424;
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Ablation: embedding algorithm",
                      "autoencoder vs contrastive vs BYOL on Bragg data");

  const auto timeline = bench::standard_timeline(10, 5);
  const nn::Batchset history = timeline.dataset_at(2, kHistory, kSeed);
  const nn::Batchset queries = timeline.dataset_at(2, kQueries, kSeed + 1);

  bench::print_row("algorithm", "rot_sensitivity", "nn_label_err_px");
  for (const char* algo : {"autoencoder", "contrastive", "byol"}) {
    auto embedder = embed::make_embedder(algo, 15, 12, kSeed + 2);
    embed::EmbedTrainConfig config;
    config.epochs = 6;
    config.batch_size = 32;
    embedder->fit(history.xs, config);
    const nn::Tensor he = embedder->embed(history.xs);
    const nn::Tensor qe = embedder->embed(queries.xs);

    // (1) rotation sensitivity.
    nn::Tensor rotated(queries.xs.shape());
    for (std::size_t i = 0; i < kQueries; ++i) {
      const auto rot = embed::rotate90(
          {queries.xs.data() + i * 225, 225}, 15, 1);
      std::copy(rot.begin(), rot.end(), rotated.data() + i * 225);
    }
    const nn::Tensor re = embedder->embed(rotated);
    double rot_dist = 0.0;
    for (std::size_t i = 0; i < kQueries; ++i) {
      double d = 0.0;
      for (std::size_t j = 0; j < 12; ++j) {
        const double diff =
            static_cast<double>(qe.at(i, j)) - re.at(i, j);
        d += diff * diff;
      }
      rot_dist += std::sqrt(d) / static_cast<double>(kQueries);
    }
    // Normalize by the mean distance between distinct samples.
    double pair_dist = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i + 1 < kQueries; i += 2) {
      double d = 0.0;
      for (std::size_t j = 0; j < 12; ++j) {
        const double diff =
            static_cast<double>(qe.at(i, j)) - qe.at(i + 1, j);
        d += diff * diff;
      }
      pair_dist += std::sqrt(d);
      ++pairs;
    }
    pair_dist /= static_cast<double>(pairs);
    const double sensitivity = rot_dist / std::max(pair_dist, 1e-12);

    // (2) 1-NN label reuse error.
    double nn_err = 0.0;
    for (std::size_t i = 0; i < kQueries; ++i) {
      double best = 1e300;
      std::size_t best_j = 0;
      for (std::size_t j = 0; j < kHistory; ++j) {
        double d = 0.0;
        for (std::size_t k = 0; k < 12; ++k) {
          const double diff =
              static_cast<double>(qe.at(i, k)) - he.at(j, k);
          d += diff * diff;
        }
        if (d < best) {
          best = d;
          best_j = j;
        }
      }
      const double dx = (static_cast<double>(history.ys.at(best_j, 0)) -
                         queries.ys.at(i, 0)) *
                        15.0;
      const double dy = (static_cast<double>(history.ys.at(best_j, 1)) -
                         queries.ys.at(i, 1)) *
                        15.0;
      nn_err += std::sqrt(dx * dx + dy * dy) / static_cast<double>(kQueries);
    }
    bench::print_row(algo, sensitivity, nn_err);
  }
  bench::print_footer(
      "BYOL's augmentation-driven objective yields the most "
      "rotation-invariant embedding (the paper's fix); the reconstruction-"
      "driven autoencoder is the most pixel-sensitive");
  return 0;
}
