// Figure 13: CookieNetAE learning curves — validation error vs epoch for
// training from scratch (Retrain) vs fine-tuning the Best / Median / Worst
// fairMS-recommended foundation, on test datasets from a drifting CookieBox
// timeline.
#include <cstdio>

#include "curves_common.hpp"
#include "datagen/cookiebox.hpp"

namespace {
constexpr std::size_t kZooModels = 5;
constexpr std::size_t kEpochs = 25;
constexpr double kTarget = 1.0e-3;
constexpr std::uint64_t kSeed = 1313;
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Fig. 13",
                      "CookieNetAE learning curves: Retrain vs "
                      "FineTune-B/M/W");

  datagen::CookieBoxTimelineConfig timeline_config;
  timeline_config.n_steps = 24;
  timeline_config.center_drift_per_step = 0.008;
  timeline_config.phase_drift_per_step = 0.05;
  const datagen::CookieBoxTimeline timeline(timeline_config);
  datagen::CookieBoxConfig data_config;
  data_config.counts_per_row = 60.0;  // low dose (see Fig. 11 rationale)

  bench::ZooSpec spec;
  spec.architecture = "cookienetae";
  spec.image_size = 32;
  spec.samples_per_dataset = 96;
  spec.zoo_train_epochs = 15;
  spec.n_clusters = 6;
  spec.learning_rate = 1.5e-3;
  spec.seed = kSeed;
  auto harness = bench::build_zoo(
      spec, kZooModels, [&](std::size_t i, std::size_t n) {
        return timeline.dataset_at(4 * i, n, kSeed, data_config);
      });

  const std::size_t test_steps[2] = {4, 13};
  for (const std::size_t step : test_steps) {
    const nn::Batchset train =
        timeline.dataset_at(step, 64, kSeed + 5, data_config);
    const nn::Batchset val =
        timeline.dataset_at(step, 32, kSeed + 6, data_config);
    std::printf("\ntest dataset @ timeline step %zu\n", step);
    const auto result = bench::run_curves(harness, spec, train, val, kEpochs,
                                          kTarget, /*fine_tune_lr=*/1e-3);
    bench::print_curves(result, kEpochs, kTarget);
  }
  bench::print_footer(
      "FineTune-B starts near-converged and reaches the target within a few "
      "epochs; Retrain needs the full schedule — fairMS's recommendation is "
      "what makes rapid updating possible");
  return 0;
}
