// Microbenchmarks: serialization codecs (google-benchmark). Quantifies the
// cost hierarchy Figs. 6-8 depend on: raw < blosc < pickle on decode, and
// blosc's compression win on smooth image payloads.
#include <benchmark/benchmark.h>
#include <string>
#include <vector>

#include "datagen/tomography.hpp"
#include "store/codec.hpp"
#include "util/rng.hpp"

namespace {

using namespace fairdms;

std::vector<float> payload(std::size_t n) {
  // Smooth-ish phantom content when square, noise otherwise.
  util::Rng rng(n * 7919);
  std::vector<float> values(n);
  if (n == 96 * 96) {
    datagen::TomoConfig config;
    config.size = 96;
    datagen::render_phantom(config, rng, values);
  } else {
    for (auto& v : values) {
      v = rng.uniform() < 0.4 ? 0.0f
                              : static_cast<float>(rng.gaussian(0.0, 1.0));
    }
  }
  return values;
}

void BM_Encode(benchmark::State& state, const std::string& codec_name) {
  const auto codec = store::make_codec(codec_name);
  const auto values = payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec->encode(values));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 4));
}

void BM_Decode(benchmark::State& state, const std::string& codec_name) {
  const auto codec = store::make_codec(codec_name);
  const auto values = payload(static_cast<std::size_t>(state.range(0)));
  const auto bytes = codec->encode(values);
  std::vector<float> out;
  for (auto _ : state) {
    codec->decode(bytes, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 4));
}

}  // namespace

BENCHMARK_CAPTURE(BM_Encode, raw, "raw")->Arg(225)->Arg(96 * 96);
BENCHMARK_CAPTURE(BM_Encode, pickle, "pickle")->Arg(225)->Arg(96 * 96);
BENCHMARK_CAPTURE(BM_Encode, blosc, "blosc")->Arg(225)->Arg(96 * 96);
BENCHMARK_CAPTURE(BM_Decode, raw, "raw")->Arg(225)->Arg(96 * 96);
BENCHMARK_CAPTURE(BM_Decode, pickle, "pickle")->Arg(225)->Arg(96 * 96);
BENCHMARK_CAPTURE(BM_Decode, blosc, "blosc")->Arg(225)->Arg(96 * 96);

BENCHMARK_MAIN();
