// Ablation: fairDS embedding retrieval vs the instance-discrimination
// baseline the paper rejects (§II-A): pixel-space nearest neighbour.
// Measures the two claimed failure modes of the baseline —
//   (1) fragility: whether a rotated copy of a query still retrieves the
//       same historical sample (the paper: the embedding "allows fairDS to
//       find similar labeled images even when subject to various
//       transformations, such as shifting, rotations, and mirroring");
//   (2) cost: per-query time scaling linearly with the database size,
//       while the two-level (cluster -> in-cluster) search stays flat-ish.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "embed/augment.hpp"
#include "fairds/fairds.hpp"
#include "fairds/pixel_baseline.hpp"
#include "util/timer.hpp"

namespace {
constexpr std::size_t kQueries = 48;
constexpr std::uint64_t kSeed = 2626;

/// Indices of the k nearest rows of `base` ([N, D]) to `query` ([D]).
std::vector<std::size_t> top_k(const fairdms::nn::Tensor& base,
                               const float* query, std::size_t d,
                               std::size_t k) {
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(base.dim(0));
  for (std::size_t i = 0; i < base.dim(0); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = static_cast<double>(base[i * d + j]) - query[j];
      s += diff * diff;
    }
    dist.emplace_back(s, i);
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  std::vector<std::size_t> out(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = dist[i].second;
  std::sort(out.begin(), out.end());
  return out;
}

/// Mean fraction of shared members between straight- and rotated-query
/// top-k neighbour sets in representation space `reps` ([N, D] per row set).
double topk_overlap(const fairdms::nn::Tensor& history_reps,
                    const fairdms::nn::Tensor& straight_reps,
                    const fairdms::nn::Tensor& rotated_reps, std::size_t k) {
  const std::size_t d = history_reps.dim(1);
  double total = 0.0;
  for (std::size_t q = 0; q < straight_reps.dim(0); ++q) {
    const auto a = top_k(history_reps, straight_reps.data() + q * d, d, k);
    const auto b = top_k(history_reps, rotated_reps.data() + q * d, d, k);
    std::vector<std::size_t> inter;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(inter));
    total += static_cast<double>(inter.size()) / static_cast<double>(k);
  }
  return total / static_cast<double>(straight_reps.dim(0));
}
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Ablation: retrieval strategy",
                      "fairDS embedding index vs pixel-space NN baseline");

  const auto timeline = bench::standard_timeline(10, 5);

  std::printf("(1) fragility: do rotated queries find the same top-10 "
              "neighbours? (history = 512)\n");
  {
    const nn::Batchset history = timeline.dataset_at(2, 512, kSeed);
    const nn::Batchset queries = timeline.dataset_at(2, kQueries, kSeed + 1);
    nn::Tensor rotated(queries.xs.shape());
    for (std::size_t i = 0; i < kQueries; ++i) {
      const auto rot =
          embed::rotate90({queries.xs.data() + i * 225, 225}, 15, 1);
      std::copy(rot.begin(), rot.end(), rotated.data() + i * 225);
    }

    store::DocStore db;
    fairds::FairDSConfig config;
    config.embedding_dim = 12;
    config.n_clusters = 8;
    config.embed_train.epochs = 6;
    config.seed = kSeed;
    fairds::FairDS ds(config, db);
    ds.train_system(history.xs);

    // Pixel space: raw flattened images are the representation.
    const nn::Tensor pixel_history = history.xs.reshaped({512, 225});
    const nn::Tensor pixel_straight = queries.xs.reshaped({kQueries, 225});
    const nn::Tensor pixel_rotated = rotated.reshaped({kQueries, 225});
    // Embedding space: fairDS's learned representation.
    const nn::Tensor emb_history = ds.embed(history.xs);
    const nn::Tensor emb_straight = ds.embed(queries.xs);
    const nn::Tensor emb_rotated = ds.embed(rotated);

    constexpr std::size_t kTop = 10;
    bench::print_row("method", "top10_ovl_pct");
    bench::print_row("pixel-NN",
                     topk_overlap(pixel_history, pixel_straight,
                                  pixel_rotated, kTop) * 100.0);
    bench::print_row("fairDS",
                     topk_overlap(emb_history, emb_straight, emb_rotated,
                                  kTop) * 100.0);
  }

  std::printf("\n(2) cost: per-query lookup time [ms] vs history size\n");
  bench::print_row("history", "pixel-NN", "fairDS");
  for (const std::size_t history_size : {256, 512, 1024, 2048}) {
    const nn::Batchset history =
        timeline.dataset_at(2, history_size, kSeed + 2);
    const nn::Batchset queries = timeline.dataset_at(2, 32, kSeed + 3);

    fairds::PixelNnBaseline pixel(15);
    pixel.ingest(history.xs, history.ys);
    util::WallTimer pixel_timer;
    bench::do_not_optimize(pixel.lookup(queries.xs));
    const double pixel_ms = pixel_timer.millis() / 32.0;

    store::DocStore db;
    fairds::FairDSConfig config;
    config.embedding_dim = 12;
    config.n_clusters = 8;
    config.embed_train.epochs = 3;
    config.seed = kSeed;
    fairds::FairDS ds(config, db);
    ds.train_system(history.xs);
    ds.ingest(history.xs, history.ys, "history");
    util::WallTimer ds_timer;
    bench::do_not_optimize(ds.lookup(queries.xs, kSeed + 4));
    const double ds_ms = ds_timer.millis() / 32.0;
    bench::print_row(history_size, pixel_ms, ds_ms);
  }
  bench::print_footer(
      "pixel-NN degrades sharply on rotated queries and its per-query cost "
      "grows with the database; the embedding index is transformation-"
      "robust and PDF lookups stay cheap — the paper's §II-A argument, "
      "measured");
  return 0;
}
