// Ablation: fairDS embedding retrieval vs the instance-discrimination
// baseline the paper rejects (§II-A): pixel-space nearest neighbour.
// Measures the two claimed failure modes of the baseline —
//   (1) fragility: whether a rotated copy of a query still retrieves the
//       same historical sample (the paper: the embedding "allows fairDS to
//       find similar labeled images even when subject to various
//       transformations, such as shifting, rotations, and mirroring");
//   (2) cost: per-query time scaling linearly with the database size,
//       while the two-level (cluster -> in-cluster) search stays flat-ish.
// — and (3) the per-sample reuse path (Fig. 9's lookup_or_label): the
// pre-rewrite implementation (one find_eq + one full-document fetch and
// decode per cluster member, per query) against the reuse-index rewrite
// (in-memory SoA nearest-neighbor search + one batched projected read).
//
// Run with `abl_retrieval small` for the CI smoke preset (minutes -> seconds);
// the default full preset is what EXPERIMENTS.md records.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_common.hpp"
#include "embed/augment.hpp"
#include "fairds/fairds.hpp"
#include "fairds/pixel_baseline.hpp"
#include "fairds/reuse_baseline.hpp"
#include "util/timer.hpp"

namespace {
constexpr std::uint64_t kSeed = 2626;

struct Preset {
  const char* name;
  std::size_t fragility_history;
  std::size_t fragility_queries;
  std::size_t fragility_epochs;
  std::vector<std::size_t> lookup_sizes;
  std::vector<std::size_t> reuse_sizes;
  std::size_t reuse_queries;
  std::size_t reuse_train_subset;  ///< embedding-training subset cap
};

Preset full_preset() {
  return {"full", 512, 48, 6, {256, 512, 1024, 2048},
          {2048, 10240}, 32, 1024};
}

Preset small_preset() {
  return {"small", 256, 16, 3, {256, 512}, {512, 2048}, 16, 512};
}

/// Indices of the k nearest rows of `base` ([N, D]) to `query` ([D]).
std::vector<std::size_t> top_k(const fairdms::nn::Tensor& base,
                               const float* query, std::size_t d,
                               std::size_t k) {
  std::vector<std::pair<double, std::size_t>> dist;
  dist.reserve(base.dim(0));
  for (std::size_t i = 0; i < base.dim(0); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      const double diff = static_cast<double>(base[i * d + j]) - query[j];
      s += diff * diff;
    }
    dist.emplace_back(s, i);
  }
  std::partial_sort(dist.begin(), dist.begin() + static_cast<std::ptrdiff_t>(k),
                    dist.end());
  std::vector<std::size_t> out(k);
  for (std::size_t i = 0; i < k; ++i) out[i] = dist[i].second;
  std::sort(out.begin(), out.end());
  return out;
}

/// Mean fraction of shared members between straight- and rotated-query
/// top-k neighbour sets in representation space `reps` ([N, D] per row set).
double topk_overlap(const fairdms::nn::Tensor& history_reps,
                    const fairdms::nn::Tensor& straight_reps,
                    const fairdms::nn::Tensor& rotated_reps, std::size_t k) {
  const std::size_t d = history_reps.dim(1);
  double total = 0.0;
  for (std::size_t q = 0; q < straight_reps.dim(0); ++q) {
    const auto a = top_k(history_reps, straight_reps.data() + q * d, d, k);
    const auto b = top_k(history_reps, rotated_reps.data() + q * d, d, k);
    std::vector<std::size_t> inter;
    std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                          std::back_inserter(inter));
    total += static_cast<double>(inter.size()) / static_cast<double>(k);
  }
  return total / static_cast<double>(straight_reps.dim(0));
}

/// First `n` rows of a [N,1,S,S] batch as their own tensor.
fairdms::nn::Tensor head_rows(const fairdms::nn::Tensor& xs, std::size_t n) {
  if (n >= xs.dim(0)) return xs;
  const std::size_t row = xs.numel() / xs.dim(0);
  fairdms::nn::Tensor out({n, xs.dim(1), xs.dim(2), xs.dim(3)});
  std::copy_n(xs.data(), n * row, out.data());
  return out;
}
}  // namespace

int main(int argc, char** argv) {
  using namespace fairdms;
  const bool small = argc > 1 && std::strcmp(argv[1], "small") == 0;
  const Preset preset = small ? small_preset() : full_preset();
  bench::print_header("Ablation: retrieval strategy",
                      std::string("fairDS embedding index vs pixel-space NN "
                                  "baseline (preset: ") +
                          preset.name + ")");

  const auto timeline = bench::standard_timeline(10, 5);

  std::printf("(1) fragility: do rotated queries find the same top-10 "
              "neighbours? (history = %zu)\n",
              preset.fragility_history);
  {
    const nn::Batchset history =
        timeline.dataset_at(2, preset.fragility_history, kSeed);
    const nn::Batchset queries =
        timeline.dataset_at(2, preset.fragility_queries, kSeed + 1);
    nn::Tensor rotated(queries.xs.shape());
    for (std::size_t i = 0; i < preset.fragility_queries; ++i) {
      const auto rot =
          embed::rotate90({queries.xs.data() + i * 225, 225}, 15, 1);
      std::copy(rot.begin(), rot.end(), rotated.data() + i * 225);
    }

    store::DocStore db;
    fairds::FairDSConfig config;
    config.embedding_dim = 12;
    config.n_clusters = 8;
    config.embed_train.epochs = preset.fragility_epochs;
    config.seed = kSeed;
    fairds::FairDS ds(config, db);
    ds.train_system(history.xs);

    // Pixel space: raw flattened images are the representation.
    const nn::Tensor pixel_history =
        history.xs.reshaped({preset.fragility_history, 225});
    const nn::Tensor pixel_straight =
        queries.xs.reshaped({preset.fragility_queries, 225});
    const nn::Tensor pixel_rotated =
        rotated.reshaped({preset.fragility_queries, 225});
    // Embedding space: fairDS's learned representation.
    const nn::Tensor emb_history = ds.embed(history.xs);
    const nn::Tensor emb_straight = ds.embed(queries.xs);
    const nn::Tensor emb_rotated = ds.embed(rotated);

    constexpr std::size_t kTop = 10;
    bench::print_row("method", "top10_ovl_pct");
    bench::print_row("pixel-NN",
                     topk_overlap(pixel_history, pixel_straight,
                                  pixel_rotated, kTop) * 100.0);
    bench::print_row("fairDS",
                     topk_overlap(emb_history, emb_straight, emb_rotated,
                                  kTop) * 100.0);
  }

  std::printf("\n(2) cost: per-query lookup time [ms] vs history size\n");
  bench::print_row("history", "pixel-NN", "fairDS");
  for (const std::size_t history_size : preset.lookup_sizes) {
    const nn::Batchset history =
        timeline.dataset_at(2, history_size, kSeed + 2);
    const nn::Batchset queries = timeline.dataset_at(2, 32, kSeed + 3);

    fairds::PixelNnBaseline pixel(15);
    pixel.ingest(history.xs, history.ys);
    util::WallTimer pixel_timer;
    bench::do_not_optimize(pixel.lookup(queries.xs));
    const double pixel_ms = pixel_timer.millis() / 32.0;

    store::DocStore db;
    fairds::FairDSConfig config;
    config.embedding_dim = 12;
    config.n_clusters = 8;
    config.embed_train.epochs = 3;
    config.seed = kSeed;
    fairds::FairDS ds(config, db);
    ds.train_system(history.xs);
    ds.ingest(history.xs, history.ys, "history");
    util::WallTimer ds_timer;
    bench::do_not_optimize(ds.lookup(queries.xs, kSeed + 4));
    const double ds_ms = ds_timer.millis() / 32.0;
    bench::print_row(history_size, pixel_ms, ds_ms);
  }

  std::printf("\n(3) per-sample reuse (lookup_or_label): per-query time [ms], "
              "legacy per-doc reads vs reuse index\n");
  bench::print_row("history", "legacy", "index", "speedup");
  const double nq = static_cast<double>(preset.reuse_queries);
  for (const std::size_t history_size : preset.reuse_sizes) {
    const nn::Batchset history =
        timeline.dataset_at(2, history_size, kSeed + 5);
    const nn::Batchset queries =
        timeline.dataset_at(2, preset.reuse_queries, kSeed + 6);

    store::DocStore db;
    fairds::FairDSConfig config;
    config.embedding_dim = 12;
    config.n_clusters = 8;
    config.embed_train.epochs = 3;
    config.seed = kSeed;
    fairds::FairDS ds(config, db);
    // Embedding training cost is not under test: train on a capped subset,
    // then ingest (and search over) the full history.
    ds.train_system(head_rows(history.xs, preset.reuse_train_subset));
    ds.ingest(history.xs, history.ys, "history");

    // A huge threshold makes every query a reuse hit, so the measurement is
    // pure retrieval (the fallback labeler never runs).
    const auto never_called = [](const nn::Tensor& xs) {
      return nn::Tensor({xs.dim(0), 2});
    };

    util::WallTimer legacy_timer;
    bench::do_not_optimize(fairds::legacy_lookup_or_label(
        ds, db, queries.xs, 1e9, never_called));
    const double legacy_ms = legacy_timer.millis() / nq;

    util::WallTimer index_timer;
    bench::do_not_optimize(
        ds.lookup_or_label(queries.xs, 1e9, never_called));
    const double index_ms = index_timer.millis() / nq;

    bench::print_row(history_size, legacy_ms, index_ms,
                     legacy_ms / index_ms);
  }

  bench::print_footer(
      "pixel-NN degrades sharply on rotated queries and its per-query cost "
      "grows with the database; the embedding index is transformation-"
      "robust, PDF lookups stay cheap, and the reuse-index rewrite removes "
      "the per-member document traffic that dominated lookup_or_label — "
      "the paper's §II-A argument plus this PR's speedup, measured");
  return 0;
}
