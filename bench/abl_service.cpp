// Ablation: the concurrent serving layer (DataService over immutable fairDS
// snapshots).
//
//   (1) throughput: closed-loop label-request clients (lookup_or_label,
//       everything-reuse threshold) submitting through one DataService;
//       queries/sec vs number of client threads. On multi-core hosts this
//       scales with cores; on a single-core host it stays flat but must not
//       degrade (the snapshot path adds no lock contention).
//   (2) retrain interference: the same drive with a forced system-plane
//       retrain fired mid-stream. The user plane must keep answering from
//       the previous snapshot — every request completes, and the slowest
//       single request stays orders of magnitude below the retrain duration
//       (no query ever waits for training).
//
// Run with `abl_service small` for the CI smoke preset; the default full
// preset is what EXPERIMENTS.md records.
#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fairds/fairds.hpp"
#include "service/data_service.hpp"
#include "util/timer.hpp"

namespace {

constexpr std::uint64_t kSeed = 3131;

struct Preset {
  const char* name;
  std::size_t history;          ///< stored samples
  std::size_t train_subset;     ///< embedding-training subset cap
  std::size_t embed_epochs;
  std::size_t batch;            ///< queries per request
  std::size_t batches_per_client;
  std::vector<std::size_t> client_counts;
};

Preset full_preset() { return {"full", 1024, 512, 3, 16, 24, {1, 2, 4, 8}}; }
Preset small_preset() { return {"small", 256, 256, 2, 8, 6, {1, 2, 4}}; }

/// First `n` rows of a [N,1,S,S] batch as their own tensor.
fairdms::nn::Tensor head_rows(const fairdms::nn::Tensor& xs, std::size_t n) {
  if (n >= xs.dim(0)) return xs;
  const std::size_t row = xs.numel() / xs.dim(0);
  fairdms::nn::Tensor out({n, xs.dim(1), xs.dim(2), xs.dim(3)});
  std::copy_n(xs.data(), n * row, out.data());
  return out;
}

struct DriveResult {
  double wall_seconds = 0.0;
  double qps = 0.0;
  double max_request_seconds = 0.0;
  std::size_t answered = 0;
};

/// Closed-loop drive: `clients` threads each submit `batches` label
/// requests of `batch` queries and wait for each response before the next.
/// When `retrain_probe` is non-null, client 0 fires one async retrain
/// request after its second batch.
DriveResult drive(fairdms::service::DataService& service,
                  const fairdms::nn::Tensor& query_xs, std::size_t clients,
                  std::size_t batches, std::size_t batch,
                  const fairdms::nn::Tensor* retrain_probe) {
  using namespace fairdms;
  const auto labeler = [](const nn::Tensor& xs) {
    return nn::Tensor({xs.dim(0), 2});
  };
  std::atomic<std::size_t> answered{0};
  std::atomic<double> max_seconds{0.0};
  // One warmup request so first-touch costs (lazy label-width derivation,
  // cold caches) don't land in the timed window of whichever client runs
  // first.
  (void)service.submit(service::LabelRequest{query_xs, 1e9, labeler}).get();
  util::WallTimer wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t b = 0; b < batches; ++b) {
        const auto response =
            service
                .submit(service::LabelRequest{query_xs, 1e9, labeler})
                .get();
        answered.fetch_add(response.reuse.reused + response.reuse.computed);
        double seen = max_seconds.load();
        while (response.seconds > seen &&
               !max_seconds.compare_exchange_weak(seen, response.seconds)) {
        }
        if (retrain_probe != nullptr && c == 0 && b == 1) {
          service.request_retrain(*retrain_probe);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  DriveResult result;
  result.wall_seconds = wall.seconds();
  result.answered = answered.load();
  result.qps = static_cast<double>(result.answered) / result.wall_seconds;
  result.max_request_seconds = max_seconds.load();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fairdms;
  const bool small = argc > 1 && std::strcmp(argv[1], "small") == 0;
  const Preset preset = small ? small_preset() : full_preset();
  bench::print_header(
      "Ablation: concurrent serving layer",
      std::string("DataService throughput + retrain interference (preset: ") +
          preset.name + ", hw threads: " +
          std::to_string(std::thread::hardware_concurrency()) + ")");

  const auto timeline = bench::standard_timeline(10, 5);
  const nn::Batchset history =
      timeline.dataset_at(2, preset.history, kSeed);
  const nn::Batchset queries =
      timeline.dataset_at(2, preset.batch, kSeed + 1);

  std::printf("(1) throughput: queries/sec vs client threads "
              "(history = %zu, %zu batches x %zu queries per client)\n",
              preset.history, preset.batches_per_client, preset.batch);
  bench::print_row("clients", "wall_s", "qps", "max_req_ms");
  for (const std::size_t clients : preset.client_counts) {
    store::DocStore db;
    fairds::FairDSConfig config;
    config.embedding_dim = 12;
    config.n_clusters = 8;
    config.embed_train.epochs = preset.embed_epochs;
    config.seed = kSeed;
    config.store_shards = 4;  // ingest/lookup don't share one writer lock
    fairds::FairDS ds(config, db);
    ds.train_system(head_rows(history.xs, preset.train_subset));
    ds.ingest(history.xs, history.ys, "history");
    service::DataService service(
        ds, {.workers = clients, .store_shards = 4});

    const auto result = drive(service, queries.xs, clients,
                              preset.batches_per_client, preset.batch,
                              nullptr);
    bench::print_row(clients, result.wall_seconds, result.qps,
                     result.max_request_seconds * 1e3);
  }

  std::printf("\n(2) retrain interference: same drive, system-plane retrain "
              "forced mid-stream (certainty threshold > 1)\n");
  // tail_s = system-plane training time still running after the last query
  // was answered (proof the stream never waited for it).
  bench::print_row("clients", "mode", "qps", "max_req_ms", "tail_s");
  const std::size_t clients =
      preset.client_counts[preset.client_counts.size() > 2
                               ? 2
                               : preset.client_counts.size() - 1];
  for (const bool with_retrain : {false, true}) {
    store::DocStore db;
    fairds::FairDSConfig config;
    config.embedding_dim = 12;
    config.n_clusters = 8;
    config.embed_train.epochs = preset.embed_epochs;
    config.certainty_threshold = 1.01;  // any probe forces the retrain
    config.seed = kSeed;
    config.store_shards = 4;
    fairds::FairDS ds(config, db);
    ds.train_system(head_rows(history.xs, preset.train_subset));
    ds.ingest(history.xs, history.ys, "history");
    service::DataService service(
        ds, {.workers = clients, .store_shards = 4});

    const nn::Batchset probe = timeline.dataset_at(7, 48, kSeed + 2);
    const auto result =
        drive(service, queries.xs, clients, preset.batches_per_client,
              preset.batch, with_retrain ? &probe.xs : nullptr);
    // The retrain may outlast the query stream; wait_idle's duration IS the
    // post-stream training tail.
    util::WallTimer tail_timer;
    service.wait_idle();
    const double tail_s = with_retrain ? tail_timer.seconds() : 0.0;
    bench::print_row(clients, with_retrain ? "retrain" : "baseline",
                     result.qps, result.max_request_seconds * 1e3, tail_s);
    if (with_retrain) {
      std::printf("    retrains completed: %zu (queries answered during "
                  "training: all %zu)\n",
                  ds.retrain_count(), result.answered);
    }
  }

  bench::print_footer(
      "clients query lock-free against the published snapshot, so "
      "throughput tracks the worker count up to the core budget and a "
      "mid-stream retrain neither stalls nor fails a single request — the "
      "slowest request stays far below the retrain duration, and the new "
      "model version swaps in atomically when training finishes");
  return 0;
}
