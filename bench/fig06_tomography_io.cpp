// Figure 6: reading Tomography data from remotely hosted MongoDB
// (Blosc/Pickle serialization) vs NFS — epoch time vs batch size and
// per-iteration I/O time vs worker count. Large dense samples: compute-bound
// training, so storage choice barely moves the epoch time (the paper's
// conclusion for this dataset).
#include "datagen/tomography.hpp"
#include "io_common.hpp"
#include "util/rng.hpp"

namespace {
constexpr std::size_t kImageSize = 96;   // paper: 2048 (scaled; see EXPERIMENTS.md)
constexpr std::size_t kSamples = 96;
constexpr std::uint64_t kSeed = 606;
}  // namespace

int main() {
  using namespace fairdms;
  util::Rng rng(kSeed);
  datagen::TomoConfig config;
  config.size = kImageSize;

  bench::IoBenchSpec spec;
  spec.figure = "Fig. 6";
  spec.title = "Tomography dataset: storage backend vs training I/O";
  spec.data = datagen::make_tomo_batchset(config, kSamples, rng);
  spec.model_factory = [] { return models::make_tomonet(kSeed); };
  spec.batch_sizes = {8, 16, 32, 64};     // paper: 64..1024
  spec.worker_counts = {1, 2, 4, 8, 16};  // paper: 1..100
  spec.io_batch = 16;
  spec.nfs_root = "/tmp/fairdms_bench_fig06";
  bench::run_io_bench(std::move(spec));

  bench::print_footer(
      "large samples: training is compute-bound, all three backends give "
      "similar epoch times; Mongo codecs pay deserialization at the largest "
      "batch, and more workers hide Mongo's per-fetch latency");
  return 0;
}
