// Figure 9: data-service validation. Train BraggNN on (a) conventionally
// labeled data (pseudo-Voigt fits, timed) and (b) a historical dataset
// retrieved by fairDS per-sample reuse with threshold T (timed). Compare the
// prediction-error distributions (P50/P75/P95) on a holdout — the paper
// finds them equivalent while fairDS labels orders of magnitude faster.
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fairds/fairds.hpp"
#include "labeling/voigt_fit.hpp"
#include "models/models.hpp"
#include "nn/optim.hpp"
#include "nn/trainer.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {
constexpr std::size_t kHistory = 512;   // labeled history in fairDS
constexpr std::size_t kNewData = 192;   // BR: the new experimental dataset
constexpr std::size_t kHoldout = 64;    // BH
constexpr std::size_t kTrainEpochs = 25;
constexpr std::uint64_t kSeed = 909;
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header(
      "Fig. 9", "BraggNN trained with conventional vs fairDS-reused labels");

  const auto timeline = bench::standard_timeline(20, 15);

  // History: early scans, labeled once by the conventional method (ground
  // truth stands in for converged pseudo-Voigt labels of past experiments).
  store::DocStore db;
  fairds::FairDSConfig ds_config;
  ds_config.embedding_algorithm = "byol";
  ds_config.embedding_dim = 12;
  ds_config.n_clusters = 8;
  ds_config.embed_train.epochs = 5;
  ds_config.seed = kSeed;
  fairds::FairDS ds(ds_config, db);
  {
    nn::Batchset history;
    history.xs = nn::Tensor({kHistory, 1, 15, 15});
    history.ys = nn::Tensor({kHistory, 2});
    const std::size_t per_scan = kHistory / 4;
    for (std::size_t s = 0; s < 4; ++s) {
      const auto part = timeline.dataset_at(s, per_scan, kSeed);
      std::copy_n(part.xs.data(), part.xs.numel(),
                  history.xs.data() + s * per_scan * 225);
      std::copy_n(part.ys.data(), part.ys.numel(),
                  history.ys.data() + s * per_scan * 2);
    }
    ds.train_system(history.xs);
    ds.ingest(history.xs, history.ys, "history");
  }

  // BR: a new dataset (same experiment family, slight drift), BH holdout.
  const nn::Batchset br = timeline.dataset_at(5, kNewData, kSeed + 1);
  const nn::Batchset bh = timeline.dataset_at(5, kHoldout, kSeed + 2);

  // Threshold T: median nearest-stored distance of a probe set, so roughly
  // half of weakly matched samples fall back to the Voigt code.
  const nn::Tensor probe_emb = ds.embed(br.xs);
  double threshold;
  {
    // Use a generous quantile of within-history distances as T.
    std::vector<double> dists;
    const auto pdf = ds.distribution(br.xs);
    (void)pdf;
    // Probe: distance of each BR sample to its nearest reused label is not
    // directly exposed; approximate T from embedding-space scale.
    double scale = 0.0;
    for (std::size_t i = 1; i < 32; ++i) {
      double d = 0.0;
      for (std::size_t j = 0; j < 12; ++j) {
        const double diff = static_cast<double>(probe_emb.at(i, j)) -
                            probe_emb.at(0, j);
        d += diff * diff;
      }
      dists.push_back(std::sqrt(d));
    }
    scale = util::percentile(dists, 60);
    threshold = scale;
  }

  // (a) conventional labeling: run real pseudo-Voigt fits, timed.
  double conventional_seconds = 0.0;
  nn::Batchset conventional;
  conventional.xs = br.xs;
  conventional.ys =
      labeling::label_patches(br.xs, {}, &conventional_seconds);

  // (b) fairDS pseudo-labels: per-sample reuse with fallback to Voigt.
  fairds::ReuseStats stats;
  util::WallTimer fairds_timer;
  const nn::Batchset reused = ds.lookup_or_label(
      br.xs, threshold,
      [](const nn::Tensor& xs) { return labeling::label_patches(xs); },
      &stats);
  const double fairds_seconds = fairds_timer.seconds();

  // Train one BraggNN per labeling strategy, evaluate on BH.
  auto eval_errors = [&](const nn::Batchset& train) {
    auto model = models::make_braggnn(kSeed + 3);
    util::Rng rng(kSeed + 4);
    nn::Adam opt(model.net, 1e-3);
    nn::TrainConfig config;
    config.max_epochs = kTrainEpochs;
    config.batch_size = 32;
    nn::fit(model.net, opt, train, bh, config, rng);
    const nn::Tensor pred = model.net.forward(bh.xs, nn::Mode::kEval);
    std::vector<double> errors(kHoldout);
    for (std::size_t i = 0; i < kHoldout; ++i) {
      errors[i] = datagen::bragg_pixel_error(pred, bh.ys, 15, i);
    }
    return errors;
  };
  const auto conv_errors = eval_errors(conventional);
  const auto fair_errors = eval_errors(reused);

  std::printf("label reuse: %zu reused, %zu computed (T=%.3f)\n\n",
              stats.reused, stats.computed, threshold);
  bench::print_row("percentile", "conventional", "fairDS");
  for (double p : {50.0, 75.0, 95.0}) {
    bench::print_row(std::string("P") + std::to_string(static_cast<int>(p)),
                     util::percentile(conv_errors, p),
                     util::percentile(fair_errors, p));
  }
  std::printf("\nlabeling time: conventional %.3f s, fairDS %.3f s "
              "(%.1fx speedup)\n",
              conventional_seconds, fairds_seconds,
              conventional_seconds / fairds_seconds);
  bench::print_footer(
      "the two error distributions are statistically equivalent while "
      "fairDS labels far faster than the pseudo-Voigt code");
  return 0;
}
