// Figure 15: the BraggNN retraining case study — data labeling time, model
// training time, and end-to-end model-update time for four methods:
//
//   FairDMS    — fairDS label reuse + fine-tune the fairMS-recommended model
//   Retrain    — fairDS label reuse + train from scratch
//   Voigt-80   — conventional MIDAS-style frame labeling projected onto an
//                80-core workstation + train from scratch
//   Voigt-1440 — same, projected onto an 18-node / 1440-core cluster
//
// The conventional arms label *full detector frames* (peak search + fit per
// peak — the real MIDAS workload); the per-frame cost is measured by running
// genuine fits here, then projected to the scan size and core counts with an
// Amdahl cost model (see DESIGN.md §4).
#include <cstdio>

#include "core/fairdms.hpp"
#include "labeling/frame_label.hpp"
#include "workflow/flow.hpp"
#include "zoo_common.hpp"

namespace {
constexpr std::size_t kZooModels = 5;
constexpr std::size_t kUpdateScan = 6;       // "dataset 22" analog: inside
                                             // the regime history covers
constexpr std::size_t kTrainSamples = 128;
constexpr std::size_t kFramesPerScan = 1440; // paper: 1400-3600 frames/scan
constexpr std::size_t kMeasureFrames = 3;    // frames fitted to calibrate
constexpr double kTargetError = 1.5e-3;
constexpr std::uint64_t kSeed = 1515;
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Fig. 15",
                      "case study: end-to-end BraggNN model update");

  const auto timeline = bench::standard_timeline(14, 5);
  bench::ZooSpec spec;
  spec.architecture = "braggnn";
  spec.samples_per_dataset = kTrainSamples;
  spec.zoo_train_epochs = 35;
  spec.seed = kSeed;
  auto harness = bench::build_zoo(
      spec, kZooModels, [&](std::size_t i, std::size_t n) {
        return timeline.dataset_at(i + 2, n, kSeed);
      });

  // Transfers: beamline <-> compute over a WAN-ish Globus link.
  workflow::TransferService transfers;
  transfers.set_link("beamline", "compute",
                     {.latency_seconds = 0.05, .bandwidth_bytes_per_s = 1e9});
  transfers.set_link("compute", "beamline",
                     {.latency_seconds = 0.05, .bandwidth_bytes_per_s = 1e9});

  core::FairDMSConfig config;
  config.architecture = "braggnn";
  config.train.max_epochs = 80;
  config.train.batch_size = 32;
  config.train.target_val_error = kTargetError;
  config.fine_tune_lr = 2e-4;
  config.distance_threshold = 1.0;
  config.seed = kSeed + 9;
  config.transfers = &transfers;
  core::FairDMS system(config, *harness.ds, *harness.db);

  // The model degraded while processing scan kUpdateScan; update before the
  // next one.
  const nn::Batchset new_data =
      timeline.dataset_at(kUpdateScan, kTrainSamples, kSeed + 21);
  const nn::Batchset validation =
      timeline.dataset_at(kUpdateScan, 64, kSeed + 22);

  // Calibrate the conventional frame-labeling cost with real fits.
  const auto regime = timeline.regime_at(kUpdateScan);
  datagen::FrameConfig frame_config;
  frame_config.size = 512;  // paper: 1440 (scaled; cost projected per frame)
  frame_config.peaks = 80;
  const double frame_seconds = labeling::measure_frame_cost(
      frame_config, regime, kMeasureFrames, kSeed + 30);
  labeling::ClusterCostModel cost;
  cost.per_patch_seconds = frame_seconds;  // unit of work = one frame
  cost.serial_fraction = 0.002;            // MIDAS staging/gather overhead
  const double voigt80_label = cost.project_seconds(kFramesPerScan, 80);
  const double voigt1440_label = cost.project_seconds(kFramesPerScan, 1440);
  std::printf("measured conventional labeling cost: %.3f s/frame "
              "(%zux%zu frame, ~%zu peaks)\n",
              frame_seconds, frame_config.size, frame_config.size,
              frame_config.peaks);
  std::printf("scan = %zu frames -> Voigt-80 %.1f s, Voigt-1440 %.1f s "
              "(Amdahl, serial=%.3f)\n\n",
              kFramesPerScan, voigt80_label, voigt1440_label,
              cost.serial_fraction);

  // The four arms. Conventional label time comes from the projection; its
  // labels themselves reuse the already-fitted ground truth (re-running
  // 1440 frames here would only burn benchmark time, not change quality).
  const auto fairdms_report = system.update_model(
      new_data.xs, validation, core::UpdateStrategy::kFairDMS);
  const auto retrain_report = system.update_model(
      new_data.xs, validation, core::UpdateStrategy::kRetrain);
  const auto voigt80_report = system.update_model(
      new_data.xs, validation, core::UpdateStrategy::kConventional,
      [&](const nn::Tensor&) { return new_data.ys; }, voigt80_label);
  const auto voigt1440_report = system.update_model(
      new_data.xs, validation, core::UpdateStrategy::kConventional,
      [&](const nn::Tensor&) { return new_data.ys; }, voigt1440_label);

  std::printf("(a) labeling vs training time [s]\n");
  bench::print_row("method", "label_s", "train_s", "epochs", "val_error");
  auto row = [](const char* name, const core::UpdateReport& r) {
    bench::print_row(name, r.label_seconds, r.train_seconds, r.epochs,
                     r.final_val_error);
  };
  row("FairDMS", fairdms_report);
  row("Retrain", retrain_report);
  row("Voigt-80", voigt80_report);
  row("Voigt-1440", voigt1440_report);

  std::printf("\n(b) end-to-end model update time [s] (incl. transfers)\n");
  bench::print_row("method", "end_to_end_s", "vs_FairDMS");
  const double base = fairdms_report.total_seconds;
  bench::print_row("FairDMS", fairdms_report.total_seconds, 1.0);
  bench::print_row("Retrain", retrain_report.total_seconds,
                   retrain_report.total_seconds / base);
  bench::print_row("Voigt-80", voigt80_report.total_seconds,
                   voigt80_report.total_seconds / base);
  bench::print_row("Voigt-1440", voigt1440_report.total_seconds,
                   voigt1440_report.total_seconds / base);

  std::printf("\nfine-tuned from zoo model at JSD %.4f; training speedup "
              "vs scratch: %.1fx in epochs\n",
              fairdms_report.foundation_distance,
              static_cast<double>(retrain_report.epochs) /
                  static_cast<double>(std::max<std::size_t>(
                      1, fairdms_report.epochs)));
  bench::print_footer(
      "FairDMS wins end to end by a wide margin: label reuse removes the "
      "conventional fitting bill and fairMS's foundation removes most "
      "training epochs (paper: 92x vs Voigt-1440, ~600x vs Voigt-80)");
  return 0;
}
