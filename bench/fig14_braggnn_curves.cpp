// Figure 14: BraggNN learning curves — Retrain vs FineTune-B/M/W on test
// datasets from a bimodal HEDM timeline (deformation event mid-way).
#include <cstdio>

#include "curves_common.hpp"
#include "datagen/bragg.hpp"

namespace {
constexpr std::size_t kZooModels = 6;
constexpr std::size_t kEpochs = 30;
constexpr std::uint64_t kSeed = 1414;
constexpr double kTarget = 1.0e-3;  // normalized-units MSE on peak centers
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Fig. 14",
                      "BraggNN learning curves: Retrain vs FineTune-B/M/W");

  // Two well-separated regimes: zoo models 0-2 come from the early phase,
  // 3-5 from after a strong deformation — the bimodal structure the paper
  // describes for this experiment.
  datagen::HedmTimelineConfig timeline_config;
  timeline_config.n_scans = 14;
  timeline_config.drift_per_scan = 0.004;
  timeline_config.deformation_scans = {5};
  timeline_config.deformation_jump = 0.8;
  const datagen::HedmTimeline timeline(timeline_config);

  bench::ZooSpec spec;
  spec.architecture = "braggnn";
  spec.samples_per_dataset = 128;
  spec.zoo_train_epochs = 18;
  spec.seed = kSeed;
  auto harness = bench::build_zoo(
      spec, kZooModels, [&](std::size_t i, std::size_t n) {
        const std::size_t scan = i < 3 ? i : i + 5;  // 0,1,2, 8,9,10
        return timeline.dataset_at(scan, n, kSeed);
      });

  const std::size_t test_scans[2] = {3, 11};  // one per regime
  for (const std::size_t scan : test_scans) {
    const nn::Batchset train = timeline.dataset_at(scan, 128, kSeed + 5);
    const nn::Batchset val = timeline.dataset_at(scan, 64, kSeed + 6);
    std::printf("\ntest dataset @ scan %zu (%s deformation)\n", scan,
                scan <= 5 ? "before" : "after");
    const auto result = bench::run_curves(harness, spec, train, val, kEpochs,
                                          kTarget, /*fine_tune_lr=*/4e-4);
    bench::print_curves(result, kEpochs, kTarget);
  }
  bench::print_footer(
      "the recommended foundation (FineTune-B) converges within the first "
      "few epochs on both sides of the deformation; random-init Retrain is "
      "consistently the slowest");
  return 0;
}
