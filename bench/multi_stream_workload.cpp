// Multi-tenant isolation workload — N streams on one DataService, with a
// forced retrain storm on stream 0 and victim tenants measured before and
// during it (ISSUE 10's cross-stream isolation gate).
//
// Phase 1 (baseline): every victim stream runs a closed-loop label workload
// with stream 0 idle; per-stream p99 is recorded.
// Phase 2 (storm): a storm thread hammers request_retrain on stream 0 —
// whose per-stream threshold is configured above 1.0, so every check that
// wins the coalescing race actually retrains — while the victims rerun the
// same workload. Stream 0's retrains serialize on its own executor; the
// victims' queries run lock-free against their own snapshots, so their p99
// should degrade only by CPU contention, never by queuing behind the storm.
//
// `--require-isolation` turns the run into a CI gate: nonzero exit when a
// victim's storm-phase p99 exceeds max(kIsolationRatio x baseline p99,
// kIsolationFloorMs), when a victim shed or retrained, when stream 0 never
// retrained, or when the per-stream ledgers fail to reconcile with the
// global aggregates. The ratio/floor bound is deliberately loose: CI hosts
// are often 1-2 cores (see EXPERIMENTS.md), where a retrain storm steals
// cycles from everything — the gate catches *structural* coupling (victims
// queuing behind another tenant's system plane), not scheduler noise.
//
// `--json PATH` writes the machine-readable report CI archives.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fairds/fairds.hpp"
#include "service/data_service.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace fairdms;
using bench::OpTally;
using bench::pct_ms;

constexpr std::uint64_t kSeed = 7272;
constexpr std::size_t kQueryPools = 8;

/// Victim p99 during the storm must stay within this factor of its own
/// baseline p99 (or the absolute floor, whichever is larger).
constexpr double kIsolationRatio = 25.0;
constexpr double kIsolationFloorMs = 250.0;

struct Preset {
  const char* name;
  std::size_t history;        ///< stored samples per stream
  std::size_t embed_epochs;
  std::size_t txns_per_victim;
  std::size_t label_batch;
  std::size_t workers;
  std::size_t max_pending;    ///< service-wide admission bound
};

Preset small_preset() { return {"small", 192, 2, 40, 8, 4, 64}; }
Preset full_preset() { return {"full", 512, 3, 120, 16, 8, 256}; }

/// One phase: every victim stream (1..N-1) drives `txns` closed-loop label
/// requests against its own stream. Returns one tally per stream (index 0
/// stays empty — stream 0 is the storm target, not a victim).
std::vector<OpTally> run_victims(service::DataService& service,
                                 std::size_t n_streams,
                                 const std::vector<nn::Batchset>& pools,
                                 std::size_t txns, std::size_t label_width) {
  // threshold 1e9 reuses a stored label for every query, so the fallback
  // never actually runs — it just satisfies the request contract.
  const auto labeler = [label_width](const nn::Tensor& xs) {
    return nn::Tensor({xs.dim(0), label_width});
  };
  std::vector<OpTally> tallies(n_streams);
  std::vector<std::thread> victims;
  for (std::size_t s = 1; s < n_streams; ++s) {
    victims.emplace_back([&, s] {
      util::Rng rng(kSeed + 100 * s);
      OpTally& tally = tallies[s];
      for (std::size_t t = 0; t < txns; ++t) {
        const std::size_t pool = rng.uniform_index(kQueryPools);
        service::LabelRequest request;
        request.xs = pools[pool].xs;
        request.threshold = 1e9;
        request.fallback_labeler = labeler;
        request.stream = "s" + std::to_string(s);
        util::WallTimer timer;
        const auto response = service.submit(std::move(request)).get();
        ++tally.submitted;
        if (response.status == service::ServeStatus::kOk) {
          ++tally.answered;
          tally.latencies.push_back(timer.seconds());
        } else {
          ++tally.shed;
        }
      }
    });
  }
  for (auto& v : victims) v.join();
  return tallies;
}

struct StreamOutcome {
  std::string stream;
  double baseline_p99_ms = 0.0;
  double storm_p99_ms = 0.0;
  std::uint64_t answered = 0;
  std::uint64_t shed = 0;
};

void write_json(const char* path, const Preset& preset, std::size_t n_streams,
                const std::vector<StreamOutcome>& victims,
                const service::ServiceStats& stats, bool isolated) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "multi_stream_workload: cannot open %s\n", path);
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"multi_stream_workload\",\n");
  std::fprintf(f, "  \"preset\": \"%s\",\n", preset.name);
  std::fprintf(f, "  \"streams\": %zu,\n", n_streams);
  std::fprintf(f, "  \"hw_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"isolation_ratio_bound\": %.1f,\n", kIsolationRatio);
  std::fprintf(f, "  \"isolation_floor_ms\": %.1f,\n", kIsolationFloorMs);
  std::fprintf(f, "  \"isolated\": %s,\n", isolated ? "true" : "false");
  std::fprintf(f, "  \"victims\": [\n");
  for (std::size_t i = 0; i < victims.size(); ++i) {
    const StreamOutcome& v = victims[i];
    std::fprintf(f,
                 "    {\"stream\": \"%s\", \"baseline_p99_ms\": %.4f, "
                 "\"storm_p99_ms\": %.4f, \"answered\": %llu, "
                 "\"shed\": %llu}%s\n",
                 v.stream.c_str(), v.baseline_p99_ms, v.storm_p99_ms,
                 static_cast<unsigned long long>(v.answered),
                 static_cast<unsigned long long>(v.shed),
                 i + 1 < victims.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"per_stream\": [\n");
  for (std::size_t i = 0; i < stats.streams.size(); ++i) {
    const service::StreamStats& s = stats.streams[i];
    std::fprintf(
        f,
        "    {\"stream\": \"%s\", \"label_answered\": %llu, "
        "\"label_shed\": %llu, \"retrain_checks\": %llu, "
        "\"retrains\": %llu, \"retrains_coalesced\": %llu, "
        "\"snapshot_version\": %llu}%s\n",
        s.stream.c_str(), static_cast<unsigned long long>(s.label_answered),
        static_cast<unsigned long long>(s.label_shed),
        static_cast<unsigned long long>(s.retrain_checks),
        static_cast<unsigned long long>(s.retrains),
        static_cast<unsigned long long>(s.retrains_coalesced),
        static_cast<unsigned long long>(s.snapshot_version),
        i + 1 < stats.streams.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("json report written to %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  Preset preset = small_preset();
  std::size_t n_streams = 3;
  const char* json_path = nullptr;
  bool require_isolation = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--preset") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (std::strcmp(name, "small") == 0) preset = small_preset();
      else if (std::strcmp(name, "full") == 0) preset = full_preset();
      else {
        std::fprintf(stderr, "unknown preset: %s\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--streams") == 0 && i + 1 < argc) {
      n_streams = std::max(2, std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--require-isolation") == 0) {
      require_isolation = true;
    } else {
      std::fprintf(stderr,
                   "usage: multi_stream_workload [--preset small|full] "
                   "[--streams N] [--json PATH] [--require-isolation]\n");
      return 2;
    }
  }

  bench::print_header(
      "Multi-tenant isolation workload",
      std::string("retrain storm on stream s0, victims measured (preset: ") +
          preset.name + ", streams: " + std::to_string(n_streams) +
          ", hw threads: " +
          std::to_string(std::thread::hardware_concurrency()) + ")");

  // --- untimed setup: one FairDS per stream, one shared store ---------------
  const auto timeline = bench::standard_timeline(12, 7);
  store::DocStore db;
  std::vector<std::unique_ptr<fairds::FairDS>> streams;
  for (std::size_t s = 0; s < n_streams; ++s) {
    fairds::FairDSConfig config;
    config.embedding_dim = 12;
    config.n_clusters = 8;
    config.embed_train.epochs = preset.embed_epochs;
    config.seed = kSeed + s;
    config.store_shards = 4;
    config.collection = "stream_s" + std::to_string(s);
    streams.push_back(std::make_unique<fairds::FairDS>(config, db));
    const nn::Batchset history =
        timeline.dataset_at(2, preset.history, kSeed + s);
    streams.back()->train_system(history.xs);
    streams.back()->ingest(history.xs, history.ys,
                           "history_s" + std::to_string(s));
  }

  service::DataService service(
      {.workers = preset.workers, .max_pending = preset.max_pending});
  for (std::size_t s = 0; s < n_streams; ++s) {
    service::StreamConfig tenant;
    if (s == 0) {
      // The storm target: every check that wins the coalescing race
      // retrains unconditionally (threshold > 1).
      tenant.retrain.certainty_threshold = 1.01;
    }
    const std::string name = "s" + std::to_string(s);
    if (!service.add_stream(name, *streams[s], tenant)) {
      std::fprintf(stderr, "duplicate stream %s\n", name.c_str());
      return 1;
    }
  }

  // Precomputed in-distribution query pools (shared world shape, so one
  // pool set serves every victim) and drifted storm probes.
  std::vector<nn::Batchset> pools;
  for (std::size_t i = 0; i < kQueryPools; ++i) {
    pools.push_back(
        timeline.dataset_at(2 + i % 4, preset.label_batch, kSeed + 10 + i));
  }
  std::vector<nn::Batchset> probes;
  for (std::size_t i = 0; i < 4; ++i) {
    probes.push_back(timeline.dataset_at(8 + i % 3, 48, kSeed + 50 + i));
  }

  // --- phase 1: baseline (stream 0 idle) ------------------------------------
  const std::size_t label_width = streams[0]->snapshot()->label_width();
  const auto baseline = run_victims(service, n_streams, pools,
                                    preset.txns_per_victim, label_width);

  // --- phase 2: storm on s0, victims rerun the same workload ----------------
  std::atomic<bool> storm_on{true};
  std::uint64_t storm_submitted = 0;
  std::thread storm([&] {
    // Closed-loop hammer: coalescing bounds how many checks actually run;
    // each accepted check retrains (threshold 1.01), so s0's system plane
    // stays continuously busy for the whole phase.
    util::Rng rng(kSeed + 9);
    while (storm_on.load(std::memory_order_acquire)) {
      (void)service.request_retrain("s0",
                                    probes[rng.uniform_index(4)].xs);
      ++storm_submitted;
    }
  });
  const auto stormed = run_victims(service, n_streams, pools,
                                   preset.txns_per_victim, label_width);
  storm_on.store(false, std::memory_order_release);
  storm.join();
  service.wait_idle();

  // --- report ---------------------------------------------------------------
  const auto stats = service.stats();
  std::vector<StreamOutcome> victims;
  bench::print_row("stream", "baseline_p99", "storm_p99", "answered", "shed");
  for (std::size_t s = 1; s < n_streams; ++s) {
    StreamOutcome v;
    v.stream = "s" + std::to_string(s);
    v.baseline_p99_ms = pct_ms(baseline[s].latencies, 99);
    v.storm_p99_ms = pct_ms(stormed[s].latencies, 99);
    v.answered = baseline[s].answered + stormed[s].answered;
    v.shed = baseline[s].shed + stormed[s].shed;
    bench::print_row(v.stream, v.baseline_p99_ms, v.storm_p99_ms,
                     static_cast<std::size_t>(v.answered),
                     static_cast<std::size_t>(v.shed));
    victims.push_back(std::move(v));
  }
  const service::StreamStats* s0 = nullptr;
  for (const auto& s : stats.streams) {
    if (s.stream == "s0") s0 = &s;
  }
  std::printf("storm: %llu probes submitted, s0 checks %llu, retrains %llu, "
              "coalesced %llu, model v%llu\n",
              static_cast<unsigned long long>(storm_submitted),
              static_cast<unsigned long long>(s0 ? s0->retrain_checks : 0),
              static_cast<unsigned long long>(s0 ? s0->retrains : 0),
              static_cast<unsigned long long>(s0 ? s0->retrains_coalesced
                                                 : 0),
              static_cast<unsigned long long>(s0 ? s0->snapshot_version : 0));

  // --- isolation gate -------------------------------------------------------
  int violations = 0;
  const auto fail = [&violations](const std::string& what) {
    std::fprintf(stderr, "ISOLATION VIOLATION: %s\n", what.c_str());
    ++violations;
  };
  if (s0 == nullptr || s0->retrains == 0) {
    fail("storm stream s0 never retrained — the storm was not a storm");
  }
  for (const StreamOutcome& v : victims) {
    const double bound =
        std::max(v.baseline_p99_ms * kIsolationRatio, kIsolationFloorMs);
    if (v.storm_p99_ms > bound) {
      fail(v.stream + " p99 " + std::to_string(v.storm_p99_ms) +
           " ms exceeds bound " + std::to_string(bound) + " ms");
    }
    if (v.answered == 0) fail(v.stream + " answered nothing");
  }
  for (const auto& s : stats.streams) {
    if (s.stream != "s0" && s.retrains != 0) {
      fail(s.stream + " retrained — the storm leaked across streams");
    }
  }
  // Per-stream ledgers must reconcile with the global aggregates.
  std::uint64_t sum_requests = 0, sum_answered = 0, sum_shed = 0;
  for (const auto& s : stats.streams) {
    sum_requests += s.label_requests + s.lookup_requests +
                    s.recommend_requests;
    sum_answered += s.label_answered + s.lookup_answered +
                    s.recommend_answered;
    sum_shed += s.label_shed + s.lookup_shed + s.recommend_shed;
  }
  if (sum_requests != stats.label_requests + stats.lookup_requests +
                          stats.recommend_requests ||
      sum_answered != stats.label_answered + stats.lookup_answered +
                          stats.recommend_answered ||
      sum_shed !=
          stats.label_shed + stats.lookup_shed + stats.recommend_shed) {
    fail("per-stream ledgers do not reconcile with the global aggregates");
  }

  const bool isolated = violations == 0;
  if (require_isolation) {
    std::printf("isolation gate: %s\n", isolated ? "PASS" : "FAIL");
  }
  if (json_path != nullptr) {
    write_json(json_path, preset, n_streams, victims, stats, isolated);
  }

  bench::print_footer(
      "one tenant's retrain storm serializes on its own executor: the "
      "victims' lock-free snapshot reads keep answering within a bounded "
      "multiple of their unloaded p99, and nothing but the storm's own "
      "stream ever retrains");
  return require_isolation && !isolated ? 1 : 0;
}
