// Figure 12: per-cluster PDF comparison (K = 15, like the paper) between an
// input dataset, the training distribution of the best-ranked zoo model, and
// the training distribution of the worst-ranked one.
#include <cstdio>

#include "datagen/bragg.hpp"
#include "zoo_common.hpp"

namespace {
constexpr std::size_t kZooModels = 6;
constexpr std::size_t kClusters = 15;  // paper's cluster count for Bragg
constexpr std::uint64_t kSeed = 1212;
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Fig. 12",
                      "input vs best/worst model training distributions "
                      "(15 clusters)");

  const auto timeline = bench::standard_timeline(16, 5);
  bench::ZooSpec spec;
  spec.architecture = "braggnn";
  spec.n_clusters = kClusters;
  spec.zoo_train_epochs = 6;  // models only need distributions here
  spec.seed = kSeed;
  auto harness = bench::build_zoo(
      spec, kZooModels, [&](std::size_t i, std::size_t n) {
        return timeline.dataset_at(2 * i, n, kSeed);
      });

  const nn::Batchset input = timeline.dataset_at(3, 96, kSeed + 7);
  const auto input_pdf = harness.ds->distribution(input.xs);
  fairms::ModelManager manager(*harness.zoo, 1.0);
  const auto ranked = manager.rank("braggnn", input_pdf);
  const auto best = harness.zoo->fetch(ranked.front().model_id);
  const auto worst = harness.zoo->fetch(ranked.back().model_id);

  std::printf("best-ranked JSD = %.4f, worst-ranked JSD = %.4f\n\n",
              ranked.front().distance, ranked.back().distance);
  bench::print_row("cluster_id", "input_pdf", "best_pdf", "worst_pdf");
  for (std::size_t c = 0; c < kClusters; ++c) {
    bench::print_row(c, input_pdf[c], best->train_pdf[c],
                     worst->train_pdf[c]);
  }
  bench::print_footer(
      "the best-ranked model's training distribution tracks the input's "
      "cluster PDF bar-for-bar; the worst-ranked one concentrates mass on "
      "different clusters");
  return 0;
}
