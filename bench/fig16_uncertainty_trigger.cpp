// Figure 16: clustering-certainty over a sequence of HEDM datasets, without
// ("Before Trigger") and with ("After Trigger") the uncertainty-triggered
// system-plane retrain. The embedding + clustering models are trained on the
// first five datasets; a deformation partway through the sequence collapses
// the static system's certainty, while the triggered system retrains and
// stays high.
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "cluster/fuzzy.hpp"
#include "fairds/fairds.hpp"

namespace {
constexpr std::size_t kDatasets = 36;        // paper: 0..35
constexpr std::size_t kWarmup = 5;           // paper: first five datasets
constexpr std::size_t kDeformation = 23;     // paper: drop at dataset 23
constexpr std::size_t kSamples = 64;
constexpr double kTriggerThreshold = 0.80;   // paper: 80%
constexpr std::uint64_t kSeed = 1616;
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Fig. 16",
                      "clustering certainty without and with the "
                      "uncertainty-triggered retrain");

  const auto timeline = bench::standard_timeline(kDatasets, kDeformation);

  auto make_ds = [&](store::DocStore& db) {
    fairds::FairDSConfig config;
    config.embedding_algorithm = "byol";
    config.embedding_dim = 12;
    config.n_clusters = 15;  // paper: 15 clusters
    config.embed_train.epochs = 5;
    config.certainty_threshold = kTriggerThreshold;
    config.seed = kSeed;
    return std::make_unique<fairds::FairDS>(config, db);
  };

  // Warm-up history: the first five datasets.
  store::DocStore db_static, db_triggered;
  auto ds_static = make_ds(db_static);
  auto ds_triggered = make_ds(db_triggered);
  {
    nn::Tensor all({kWarmup * kSamples, 1, 15, 15});
    for (std::size_t i = 0; i < kWarmup; ++i) {
      const auto part = timeline.dataset_at(i, kSamples, kSeed);
      std::copy_n(part.xs.data(), part.xs.numel(),
                  all.data() + i * kSamples * 225);
    }
    ds_static->train_system(all);
    ds_triggered->train_system(all);
    for (std::size_t i = 0; i < kWarmup; ++i) {
      const auto part = timeline.dataset_at(i, kSamples, kSeed);
      ds_static->ingest(part.xs, part.ys, "warm_" + std::to_string(i));
      ds_triggered->ingest(part.xs, part.ys, "warm_" + std::to_string(i));
    }
  }

  std::printf("(trigger threshold %.0f%%, deformation at dataset %zu)\n\n",
              kTriggerThreshold * 100.0, kDeformation);
  bench::print_row("dataset", "before_pct", "after_pct", "retrained");
  std::size_t triggers = 0;
  for (std::size_t i = kWarmup; i < kDatasets; ++i) {
    const auto data = timeline.dataset_at(i, kSamples, kSeed + 1);
    const double before = ds_static->certainty(data.xs) * 100.0;

    const double after_pre = ds_triggered->certainty(data.xs) * 100.0;
    const bool retrained = ds_triggered->maybe_retrain(data.xs);
    if (retrained) ++triggers;
    const double after = retrained
                             ? ds_triggered->certainty(data.xs) * 100.0
                             : after_pre;
    // The triggered system also keeps ingesting newly labeled data.
    ds_triggered->ingest(data.xs, data.ys, "seq_" + std::to_string(i));
    bench::print_row(i, before, after,
                     retrained ? std::string("TRIGGER") : std::string(""));
  }
  std::printf("\nretrains triggered: %zu\n", triggers);
  bench::print_footer(
      "the static system's certainty collapses at the deformation and never "
      "recovers; the triggered system retrains the embedding + clustering "
      "and keeps assigning new data confidently");
  return 0;
}
