// Ablation: cluster-count selection. fairDS picks K automatically with the
// elbow method (YellowBrick analog); this bench prints the WSS curve, the
// chosen knee, and the downstream effect of K on fuzzy assignment certainty
// and on the width of the cluster PDF used for model indexing.
#include <cstdio>

#include "bench_common.hpp"
#include "cluster/fuzzy.hpp"
#include "cluster/kmeans.hpp"
#include "embed/embedder.hpp"

namespace {
constexpr std::size_t kSamples = 320;
constexpr std::uint64_t kSeed = 2525;
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Ablation: elbow method",
                      "WSS curve, knee selection, and downstream certainty");

  // Multimodal history: four distinct regimes along the timeline.
  const auto timeline = bench::standard_timeline(16, 8);
  nn::Tensor all({kSamples, 1, 15, 15});
  const std::size_t per = kSamples / 4;
  for (std::size_t r = 0; r < 4; ++r) {
    const auto part = timeline.dataset_at(4 * r, per, kSeed);
    std::copy_n(part.xs.data(), part.xs.numel(),
                all.data() + r * per * 225);
  }
  auto embedder = embed::make_embedder("byol", 15, 12, kSeed);
  embed::EmbedTrainConfig config;
  config.epochs = 5;
  embedder->fit(all, config);
  const nn::Tensor embeddings = embedder->embed(all);

  const auto elbow = cluster::elbow_k(embeddings, 2, 14, kSeed);
  bench::print_row("k", "wss", "certainty_pct");
  for (std::size_t k = 2; k <= 14; ++k) {
    cluster::KMeansConfig kc;
    kc.k = k;
    kc.seed = kSeed + k;
    const auto model = cluster::kmeans_fit(embeddings, kc);
    bench::print_row(k, elbow.wss_curve[k - 2],
                     cluster::dataset_certainty(model, embeddings) * 100.0);
  }
  std::printf("\nelbow-selected K = %zu (4 generative regimes in history)\n",
              elbow.best_k);
  bench::print_footer(
      "WSS drops steeply until the true regime count and flattens after; "
      "the knee lands near it, balancing PDF resolution against assignment "
      "certainty");
  return 0;
}
