// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints the rows/series of one paper figure. Dataset and
// model sizes are scaled for a CPU-only box (all knobs are constants at the
// top of each bench and recorded in EXPERIMENTS.md); the claims under test
// are *shapes and ratios*, not absolute seconds.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "datagen/bragg.hpp"
#include "util/rng.hpp"

namespace fairdms::bench {

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline void print_footer(const std::string& takeaway) {
  std::printf("--------------------------------------------------------------\n");
  std::printf("takeaway: %s\n\n", takeaway.c_str());
}

/// Column-formatted row printing: print_row("a", 1.5, 2) etc.
inline void print_cell(const char* v) { std::printf("%16s", v); }
inline void print_cell(const std::string& v) { std::printf("%16s", v.c_str()); }
inline void print_cell(double v) { std::printf("%16.6g", v); }
inline void print_cell(float v) { std::printf("%16.6g", static_cast<double>(v)); }
inline void print_cell(int v) { std::printf("%16d", v); }
inline void print_cell(std::size_t v) {
  std::printf("%16zu", v);
}

template <typename... Cells>
void print_row(const Cells&... cells) {
  (print_cell(cells), ...);
  std::printf("\n");
}

/// Keeps a timed result observably alive so the compiler cannot drop the
/// measured computation (and [[nodiscard]] stays satisfied).
template <typename T>
void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Standard HEDM timeline used across the Bragg figures: smooth drift with
/// one deformation event (the paper's "sample deformation around scan 444",
/// rescaled onto a short timeline).
inline datagen::HedmTimeline standard_timeline(std::size_t n_scans,
                                               std::size_t deformation_scan) {
  datagen::HedmTimelineConfig config;
  config.n_scans = n_scans;
  config.drift_per_scan = 0.004;
  config.deformation_scans = {deformation_scan};
  config.deformation_jump = 0.5;
  return datagen::HedmTimeline(config);
}

}  // namespace fairdms::bench
