// Shared helpers for the figure-reproduction benches.
//
// Every bench binary prints the rows/series of one paper figure. Dataset and
// model sizes are scaled for a CPU-only box (all knobs are constants at the
// top of each bench and recorded in EXPERIMENTS.md); the claims under test
// are *shapes and ratios*, not absolute seconds.
#pragma once

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "datagen/bragg.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace fairdms::bench {

inline void print_header(const std::string& figure,
                         const std::string& description) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", figure.c_str(), description.c_str());
  std::printf("==============================================================\n");
}

inline void print_footer(const std::string& takeaway) {
  std::printf("--------------------------------------------------------------\n");
  std::printf("takeaway: %s\n\n", takeaway.c_str());
}

/// Column-formatted row printing: print_row("a", 1.5, 2) etc.
inline void print_cell(const char* v) { std::printf("%16s", v); }
inline void print_cell(const std::string& v) { std::printf("%16s", v.c_str()); }
inline void print_cell(double v) { std::printf("%16.6g", v); }
inline void print_cell(float v) { std::printf("%16.6g", static_cast<double>(v)); }
inline void print_cell(int v) { std::printf("%16d", v); }
inline void print_cell(std::size_t v) {
  std::printf("%16zu", v);
}

template <typename... Cells>
void print_row(const Cells&... cells) {
  (print_cell(cells), ...);
  std::printf("\n");
}

/// Keeps a timed result observably alive so the compiler cannot drop the
/// measured computation (and [[nodiscard]] stays satisfied).
template <typename T>
void do_not_optimize(const T& value) {
  asm volatile("" : : "g"(&value) : "memory");
}

/// Standard HEDM timeline used across the Bragg figures: smooth drift with
/// one deformation event (the paper's "sample deformation around scan 444",
/// rescaled onto a short timeline).
inline datagen::HedmTimeline standard_timeline(std::size_t n_scans,
                                               std::size_t deformation_scan) {
  datagen::HedmTimelineConfig config;
  config.n_scans = n_scans;
  config.drift_per_scan = 0.004;
  config.deformation_scans = {deformation_scan};
  config.deformation_jump = 0.5;
  return datagen::HedmTimeline(config);
}

// --- closed-loop workload machinery (mixed_workload / net_workload) ---------
// TPC-C idioms shared by the transaction drivers: NURand hot-key skew,
// exact-proportion shuffled decks, and per-op latency tallies reported as
// p50/p99/p999. Both the in-process and the wire-level driver draw from
// these so their offered mixes are comparable by construction.

/// TPC-C NURand(A, 0, n-1): ORing two uniform draws concentrates results on
/// a hot subset of the key space; C decorrelates the hot set from the key
/// order. `a` is the TPC-C A constant sized to the key space (e.g. 7 for a
/// 16-wide space).
inline std::size_t nurand(util::Rng& rng, std::size_t a, std::size_t n,
                          std::size_t c) {
  const std::size_t hot = rng.uniform_index(a + 1);
  const std::size_t base = rng.uniform_index(n);
  return ((hot | base) + c) % n;
}

/// An exact-proportion transaction deck: `txns` op indices with
/// floor(txns * weight / 100) slots per op (weights in percent), padded to
/// `txns` with `fill_op`, then shuffled — so every client offers exactly
/// the preset's mix, not a sampled approximation of it.
inline std::vector<std::size_t> build_deck(
    util::Rng& rng, std::size_t txns,
    std::span<const std::size_t> weights_pct, std::size_t fill_op) {
  std::vector<std::size_t> deck;
  deck.reserve(txns);
  for (std::size_t op = 0; op < weights_pct.size(); ++op) {
    deck.insert(deck.end(), txns * weights_pct[op] / 100, op);
  }
  while (deck.size() < txns) deck.push_back(fill_op);
  rng.shuffle(deck);
  return deck;
}

/// Per-client, per-op measurements; merged after the join (threads) or the
/// wait (processes). `shed` counts explicit non-kOk outcomes — they are
/// excluded from the latency percentiles so shedding cannot deflate them.
struct OpTally {
  std::uint64_t submitted = 0;
  std::uint64_t answered = 0;
  std::uint64_t shed = 0;
  std::vector<double> latencies;  ///< seconds, answered requests only

  void merge(const OpTally& other) {
    submitted += other.submitted;
    answered += other.answered;
    shed += other.shed;
    latencies.insert(latencies.end(), other.latencies.begin(),
                     other.latencies.end());
  }
};

/// Latency percentile in milliseconds (0 when nothing was answered).
inline double pct_ms(const std::vector<double>& xs, double p) {
  if (xs.empty()) return 0.0;
  return util::percentile(xs, p) * 1e3;
}

}  // namespace fairdms::bench
