// Figure 2: prediction error and MC-dropout uncertainty of a BraggNN model
// trained on early-phase HEDM data, evaluated across the experiment
// timeline. A deformation event partway through degrades the model; both
// the error and the uncertainty signal it.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "datagen/bragg.hpp"
#include "models/models.hpp"
#include "nn/optim.hpp"
#include "nn/trainer.hpp"
#include "nn/uncertainty.hpp"
#include "util/stats.hpp"

namespace {

constexpr std::size_t kScans = 20;            // paper: scans 402..486
constexpr std::size_t kDeformationScan = 12;  // paper: after scan 444
constexpr std::size_t kTrainScans = 5;        // paper: train up to scan 402
constexpr std::size_t kSamplesPerScan = 96;
constexpr std::size_t kEvalPerScan = 64;
constexpr std::size_t kMcSamples = 12;
constexpr std::uint64_t kSeed = 2022;

}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Fig. 2",
                      "model degradation over an HEDM experiment timeline");

  const auto timeline = bench::standard_timeline(kScans, kDeformationScan);

  // Train BraggNN on the first kTrainScans scans.
  nn::Batchset train;
  {
    std::vector<nn::Batchset> parts;
    std::size_t total = 0;
    for (std::size_t s = 0; s < kTrainScans; ++s) {
      parts.push_back(timeline.dataset_at(s, kSamplesPerScan, kSeed));
      total += parts.back().size();
    }
    train.xs = nn::Tensor({total, 1, 15, 15});
    train.ys = nn::Tensor({total, 2});
    std::size_t row = 0;
    for (const auto& part : parts) {
      std::copy_n(part.xs.data(), part.xs.numel(),
                  train.xs.data() + row * 225);
      std::copy_n(part.ys.data(), part.ys.numel(),
                  train.ys.data() + row * 2);
      row += part.size();
    }
  }
  auto model = models::make_braggnn(kSeed);
  util::Rng rng(kSeed);
  nn::Adam opt(model.net, 1e-3);
  nn::TrainConfig config;
  config.max_epochs = 25;
  config.batch_size = 32;
  nn::fit(model.net, opt, train, train, config, rng);

  std::printf("(deformation event at scan index %zu)\n\n", kDeformationScan);
  fairdms::bench::print_row("scan", "error_px", "uncertainty");
  double pre_error = 0.0, post_error = 0.0;
  std::size_t pre_n = 0, post_n = 0;
  for (std::size_t scan = 0; scan < kScans; ++scan) {
    const nn::Batchset eval =
        timeline.dataset_at(scan, kEvalPerScan, kSeed + 1);
    const nn::Tensor pred = model.net.forward(eval.xs, nn::Mode::kEval);
    double err = 0.0;
    for (std::size_t i = 0; i < kEvalPerScan; ++i) {
      err += datagen::bragg_pixel_error(pred, eval.ys, 15, i);
    }
    err /= static_cast<double>(kEvalPerScan);
    const double unc =
        nn::mc_dropout_uncertainty(model.net, eval.xs, kMcSamples);
    bench::print_row(scan, err, unc);
    if (scan >= kTrainScans) {
      if (scan < kDeformationScan) {
        pre_error += err;
        ++pre_n;
      } else {
        post_error += err;
        ++post_n;
      }
    }
  }
  pre_error /= static_cast<double>(pre_n);
  post_error /= static_cast<double>(post_n);
  std::printf("\npre-deformation mean error:  %.4f px\n", pre_error);
  std::printf("post-deformation mean error: %.4f px (%.2fx)\n", post_error,
              post_error / pre_error);
  bench::print_footer(
      "error (and uncertainty) stay flat until the deformation event, then "
      "jump — the trigger for rapid model updating");
  return 0;
}
