// Shared harness for the learning-curve figures (Figs. 13-14): fine-tune
// the Best / Median / Worst fairMS-ranked zoo model vs retraining from
// scratch, recording the validation-error curve of each arm.
#pragma once

#include <array>
#include <cstdio>
#include <string>

#include "zoo_common.hpp"

namespace fairdms::bench {

inline constexpr const char* kArmNames[4] = {"Retrain", "FineTune-B",
                                             "FineTune-M", "FineTune-W"};

struct CurveResult {
  std::array<std::vector<double>, 4> curves;  ///< Retrain, FT-B, FT-M, FT-W
  std::array<std::size_t, 4> convergence{};   ///< 1-based epoch, 0 = never
};

/// Runs the four arms on one test dataset: `train` is the new data to adapt
/// to, `val` a held-out split of the same distribution. `target` is the
/// validation error that counts as converged.
inline CurveResult run_curves(const ZooHarness& harness, const ZooSpec& spec,
                              const nn::Batchset& train,
                              const nn::Batchset& val, std::size_t epochs,
                              double target, double fine_tune_lr) {
  const auto pdf = harness.ds->distribution(train.xs);
  fairms::ModelManager manager(*harness.zoo, 1.0);
  const auto ranked = manager.rank(spec.architecture, pdf);

  CurveResult result;
  for (int arm = 0; arm < 4; ++arm) {
    models::TaskModel model = models::make_model(
        spec.architecture, spec.seed + 555 + static_cast<std::size_t>(arm),
        spec.image_size);
    double lr = spec.learning_rate;
    if (arm > 0) {
      const std::size_t pick =
          arm == 1 ? 0 : (arm == 2 ? ranked.size() / 2 : ranked.size() - 1);
      const auto record = harness.zoo->fetch(ranked[pick].model_id);
      nn::load_parameters(model.net, record->parameters);
      lr = fine_tune_lr;
    }
    util::Rng rng(spec.seed + 999 + static_cast<std::size_t>(arm));
    nn::Adam opt(model.net, lr);
    nn::TrainConfig config;
    config.max_epochs = epochs;
    config.batch_size = 32;
    const nn::TrainResult r = nn::fit(model.net, opt, train, val, config,
                                      rng);
    result.curves[static_cast<std::size_t>(arm)] = r.curve;
    // Convergence epoch relative to the shared target.
    for (std::size_t e = 0; e < r.curve.size(); ++e) {
      if (r.curve[e] <= target) {
        result.convergence[static_cast<std::size_t>(arm)] = e + 1;
        break;
      }
    }
  }
  return result;
}

inline void print_curves(const CurveResult& result, std::size_t epochs,
                         double target) {
  print_row("epoch", kArmNames[0], kArmNames[1], kArmNames[2], kArmNames[3]);
  for (std::size_t e = 0; e < epochs; ++e) {
    auto cell = [&](int arm) {
      const auto& curve = result.curves[static_cast<std::size_t>(arm)];
      return e < curve.size() ? curve[e] : curve.back();
    };
    print_row(e + 1, cell(0), cell(1), cell(2), cell(3));
  }
  std::printf("epochs to reach val error <= %g:\n", target);
  for (int arm = 0; arm < 4; ++arm) {
    const std::size_t c = result.convergence[static_cast<std::size_t>(arm)];
    if (c == 0) {
      std::printf("  %-12s not reached in %zu epochs\n", kArmNames[arm],
                  epochs);
    } else {
      std::printf("  %-12s %zu\n", kArmNames[arm], c);
    }
  }
}

}  // namespace fairdms::bench
