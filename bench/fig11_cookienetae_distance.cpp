// Figure 11: prediction error vs JSD dataset distance for CookieNetAE over
// a *gradually drifting* CookieBox timeline — the monotone counterpart of
// Fig. 10.
#include <cstdio>
#include <vector>

#include "datagen/cookiebox.hpp"
#include "nn/loss.hpp"
#include "util/stats.hpp"
#include "zoo_common.hpp"

namespace {
constexpr std::size_t kZooModels = 6;
constexpr std::size_t kEvalSamples = 48;
constexpr std::uint64_t kSeed = 1111;
}  // namespace

int main() {
  using namespace fairdms;
  bench::print_header("Fig. 11",
                      "CookieNetAE: prediction error vs JSD dataset distance "
                      "(gradual drift)");

  datagen::CookieBoxTimelineConfig timeline_config;
  timeline_config.n_steps = 24;
  timeline_config.center_drift_per_step = 0.008;
  timeline_config.phase_drift_per_step = 0.05;
  const datagen::CookieBoxTimeline timeline(timeline_config);
  datagen::CookieBoxConfig data_config;  // 32x32
  // Low-dose histograms: denoising then leans on regime-specific priors,
  // which is what makes foundation choice matter.
  data_config.counts_per_row = 60.0;

  bench::ZooSpec spec;
  spec.architecture = "cookienetae";
  spec.image_size = 32;
  spec.samples_per_dataset = 64;
  spec.zoo_train_epochs = 12;
  spec.n_clusters = 10;
  spec.learning_rate = 5e-4;
  spec.seed = kSeed;
  // Zoo model i trains on timeline step 3*i (steps 0,3,6,9,12,15).
  auto harness = bench::build_zoo(
      spec, kZooModels, [&](std::size_t i, std::size_t n) {
        return timeline.dataset_at(3 * i, n, kSeed, data_config);
      });

  const std::size_t test_steps[4] = {2, 7, 11, 14};
  std::vector<double> all_jsd, all_err;
  for (const std::size_t step : test_steps) {
    const nn::Batchset test =
        timeline.dataset_at(step, kEvalSamples, kSeed + 77, data_config);
    const auto pdf = harness.ds->distribution(test.xs);
    std::printf("\ntest dataset @ timeline step %zu\n", step);
    bench::print_row("zoo_model", "jsd_distance", "error_1e3");
    std::vector<double> jsds, errs;
    for (std::size_t m = 0; m < kZooModels; ++m) {
      const auto record = harness.zoo->fetch(harness.model_ids[m]);
      const double jsd =
          fairms::jensen_shannon_divergence(pdf, record->train_pdf);
      auto model = bench::materialize(harness, harness.model_ids[m], spec);
      const nn::Tensor pred = model.net.forward(test.xs, nn::Mode::kEval);
      const double err = nn::mse_loss(pred, test.ys).value * 1e3;
      bench::print_row(m, jsd, err);
      jsds.push_back(jsd);
      errs.push_back(err);
      all_jsd.push_back(jsd);
      all_err.push_back(err);
    }
    std::printf("    dataset Pearson(error, jsd) = %.3f\n",
                util::pearson(jsds, errs));
  }
  std::printf("\noverall Pearson(error, jsd) = %.3f over %zu points\n",
              util::pearson(all_jsd, all_err), all_jsd.size());
  bench::print_footer(
      "with gradual drift the relationship is near-monotone: the closest "
      "dataset's model predicts best, exactly what fairMS exploits");
  return 0;
}
