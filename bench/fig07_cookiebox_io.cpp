// Figure 7: CookieBox dataset storage sweep (same panels as Fig. 6).
// Mid-sized samples: compute still dominates, backends comparable.
#include "datagen/cookiebox.hpp"
#include "io_common.hpp"
#include "util/rng.hpp"

namespace {
constexpr std::size_t kSamples = 384;
constexpr std::uint64_t kSeed = 707;
}  // namespace

int main() {
  using namespace fairdms;
  util::Rng rng(kSeed);
  datagen::CookieBoxConfig config;  // 32x32 (paper: 128x128; scaled)

  bench::IoBenchSpec spec;
  spec.figure = "Fig. 7";
  spec.title = "CookieBox dataset: storage backend vs training I/O";
  spec.data = datagen::make_cookiebox_batchset({}, config, kSamples, rng);
  spec.model_factory = [] { return models::make_cookienetae(kSeed); };
  spec.batch_sizes = {16, 32, 64, 128};   // paper: 32..1024
  spec.worker_counts = {1, 2, 4, 8, 16};  // paper: 1..100
  spec.io_batch = 32;
  spec.nfs_root = "/tmp/fairdms_bench_fig07";
  bench::run_io_bench(std::move(spec));

  bench::print_footer(
      "as with tomography, epoch time is inversely proportional to batch "
      "size and insensitive to the storage backend; worker parallelism "
      "drives Mongo fetch time toward NFS's");
  return 0;
}
