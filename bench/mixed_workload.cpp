// Mixed-workload transaction driver — the paper's DOE-beamline traffic
// shape, driven as one closed-loop TPC-style mix instead of one op type at
// a time (ROADMAP open item 2).
//
// Five typed transactions hit one DataService + ModelZoo concurrently:
//   ingest          — streaming detector writes (system plane, direct)
//   lookup_or_label — the Fig. 9 label-reuse query (user plane, admission
//                     controlled)
//   rank            — foundation-model recommendation (user plane,
//                     admission controlled)
//   publish         — a newly trained model lands in the zoo
//   request_retrain — the Fig. 16 drift probe (system plane, coalesced)
//
// TPC-C idioms, adapted:
//   * weighted mixes: each client's script is a shuffled deck with the
//     preset's op proportions, so the offered mix is exact per client;
//   * NURand hot-key skew: query/ingest data is drawn from a pool of
//     precomputed batches through the classic non-uniform-random OR
//     construction, so a hot subset of pools (and therefore the clusters
//     they map to) absorbs most of the traffic;
//   * scale parameter: --scale N multiplies stored history and per-client
//     transaction count;
//   * precalculated workloads: every tensor, dataset id, PDF, and
//     parameter blob a transaction touches is generated before the timer
//     starts, so generation cost never pollutes the timed region.
//
// Per-op-type latency histograms report p50/p99/p999 (client-observed,
// submit-to-response; shed requests are counted separately and excluded
// from the percentiles). `--json PATH` writes the machine-readable report
// CI archives as BENCH_*.json; `--require-graceful` turns the run into a
// robustness gate: nonzero exit when the service shed 100% of user-plane
// traffic, the admission ledger does not reconcile, or the queue failed to
// drain — an abort or deadlock fails the step on its own.
//
// Presets: `small` (CI smoke), `full` (EXPERIMENTS.md numbers), and
// `saturate` (deliberately over-capacity: 1 worker, a 4-deep pending
// queue, bursty submission, and a forced-trigger retrain storm — the run
// must degrade by partial shedding, never by stalling or aborting).
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "fairds/fairds.hpp"
#include "fairms/zoo.hpp"
#include "service/data_service.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace {

using namespace fairdms;

constexpr std::uint64_t kSeed = 6161;
constexpr std::size_t kQueryPools = 16;  ///< precomputed hot-key space
constexpr std::size_t kNurandA = 7;      ///< TPC-C A for a 16-wide key space
constexpr std::size_t kRetrainProbes = 4;
constexpr std::size_t kPublishBlobBytes = 4096;

enum class Op : std::size_t {
  kIngest = 0,
  kLabel,
  kRank,
  kPublish,
  kRetrain,
  kCount,
};
constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kCount);

const char* op_name(std::size_t op) {
  static const char* kNames[kOpCount] = {"ingest", "lookup_or_label", "rank",
                                         "publish", "request_retrain"};
  return kNames[op];
}

/// Transaction weights, in percent (must sum to 100).
struct MixWeights {
  std::size_t ingest;
  std::size_t label;
  std::size_t rank;
  std::size_t publish;
  std::size_t retrain;
};

struct Preset {
  const char* name;
  std::size_t history;          ///< stored samples before the timed run
  std::size_t train_subset;     ///< embedding-training subset cap
  std::size_t embed_epochs;
  std::size_t clients;
  std::size_t txns_per_client;
  std::size_t label_batch;      ///< queries per label/rank transaction
  std::size_t ingest_batch;     ///< samples per ingest transaction
  std::size_t workers;          ///< service worker threads
  std::size_t max_pending;      ///< admission bound (0 = unbounded)
  std::size_t burst;            ///< label futures in flight per transaction
  double certainty_threshold;   ///< >1 forces every retrain probe to train
  MixWeights weights;
};

Preset small_preset() {
  return {"small", 256, 256, 2, 4, 40, 8, 16, 4, 64, 1, 0.8,
          {15, 60, 10, 5, 10}};
}
Preset full_preset() {
  return {"full", 1024, 512, 3, 8, 120, 16, 32, 8, 256, 1, 0.8,
          {15, 60, 10, 5, 10}};
}
Preset saturate_preset() {
  // Offered load deliberately exceeds capacity: one worker, a 4-deep
  // pending queue, 8 clients submitting 4-deep bursts, and every retrain
  // probe forced to actually train (a retrain storm on the system plane).
  return {"saturate", 256, 256, 2, 8, 24, 8, 8, 1, 4, 4, 1.01,
          {25, 45, 10, 5, 15}};
}

/// NURand hot-key skew specialized to this bench's pool space (the shared
/// construction lives in bench_common.hpp; net_workload draws from it too).
std::size_t nurand(util::Rng& rng, std::size_t n, std::size_t c) {
  return bench::nurand(rng, kNurandA, n, c);
}

struct Txn {
  Op op;
  std::size_t arg;  ///< index into the op's precomputed workload table
};

/// Everything the timed region consumes, generated up front.
struct Workload {
  std::vector<nn::Batchset> query_pools;            // label/rank inputs
  std::vector<nn::Batchset> ingest_batches;         // one per ingest txn
  std::vector<std::string> ingest_ids;
  std::vector<std::vector<double>> publish_pdfs;    // one per publish txn
  std::vector<std::vector<std::uint8_t>> publish_blobs;
  std::vector<std::string> publish_ids;
  std::vector<nn::Batchset> retrain_probes;
  std::vector<std::vector<Txn>> scripts;            // per client
};

using bench::OpTally;
using bench::pct_ms;

fairdms::nn::Tensor head_rows(const fairdms::nn::Tensor& xs, std::size_t n) {
  if (n >= xs.dim(0)) return xs;
  const std::size_t row = xs.numel() / xs.dim(0);
  fairdms::nn::Tensor out({n, xs.dim(1), xs.dim(2), xs.dim(3)});
  std::copy_n(xs.data(), n * row, out.data());
  return out;
}

Workload build_workload(const Preset& preset,
                        const datagen::HedmTimeline& timeline,
                        fairds::FairDS& ds) {
  Workload w;
  // Hot-key space: pools drawn from the pre-deformation scans (2..5) stay
  // in-distribution, so their cluster PDFs differ but overlap — NURand
  // then concentrates traffic on a hot subset of pools, i.e. hot clusters.
  w.query_pools.reserve(kQueryPools);
  for (std::size_t i = 0; i < kQueryPools; ++i) {
    w.query_pools.push_back(
        timeline.dataset_at(2 + i % 4, preset.label_batch, kSeed + 10 + i));
  }
  for (std::size_t i = 0; i < kRetrainProbes; ++i) {
    // Post-deformation scans: genuinely drifted probes, so whether a check
    // retrains is decided by the certainty threshold, not by construction.
    w.retrain_probes.push_back(
        timeline.dataset_at(8 + i % 3, 48, kSeed + 50 + i));
  }

  // Scripts: an exact-proportion deck per client, shuffled per client.
  util::Rng rng(kSeed);
  const std::size_t nurand_c = rng.uniform_index(kQueryPools);
  for (std::size_t c = 0; c < preset.clients; ++c) {
    util::Rng client_rng = rng.fork(1000 + c);
    const MixWeights& mix = preset.weights;
    const std::size_t weights[kOpCount] = {mix.ingest, mix.label, mix.rank,
                                           mix.publish, mix.retrain};
    const std::vector<std::size_t> deck =
        bench::build_deck(client_rng, preset.txns_per_client, weights,
                          static_cast<std::size_t>(Op::kLabel));

    std::vector<Txn> script;
    script.reserve(deck.size());
    for (const std::size_t op_index : deck) {
      const Op op = static_cast<Op>(op_index);
      Txn txn{op, 0};
      switch (op) {
        case Op::kIngest: {
          txn.arg = w.ingest_batches.size();
          const std::size_t pool = nurand(client_rng, kQueryPools, nurand_c);
          w.ingest_batches.push_back(timeline.dataset_at(
              2 + pool % 4, preset.ingest_batch, kSeed + 900 + txn.arg));
          w.ingest_ids.push_back("mix_c" + std::to_string(c) + "_t" +
                                 std::to_string(txn.arg));
          break;
        }
        case Op::kLabel:
        case Op::kRank:
          txn.arg = nurand(client_rng, kQueryPools, nurand_c);
          break;
        case Op::kPublish: {
          txn.arg = w.publish_pdfs.size();
          const std::size_t pool = nurand(client_rng, kQueryPools, nurand_c);
          w.publish_pdfs.push_back(ds.distribution(w.query_pools[pool].xs));
          w.publish_blobs.emplace_back(kPublishBlobBytes,
                                       static_cast<std::uint8_t>(txn.arg));
          w.publish_ids.push_back("mix_pub_" + std::to_string(txn.arg));
          break;
        }
        case Op::kRetrain:
          txn.arg = client_rng.uniform_index(kRetrainProbes);
          break;
        case Op::kCount:
          break;
      }
      script.push_back(txn);
    }
    w.scripts.push_back(std::move(script));
  }
  return w;
}

struct RunResult {
  double wall_seconds = 0.0;
  OpTally ops[kOpCount];
  service::ServiceStats stats;
  service::ServiceStats baseline;  ///< post-warmup, pre-run (for deltas)
  double drain_seconds = 0.0;      ///< wait_idle duration after the last txn
};

RunResult run_mix(const Preset& preset, const Workload& w,
                  fairds::FairDS& ds, fairms::ModelZoo& zoo,
                  service::DataService& service) {
  const std::size_t label_width = ds.snapshot()->label_width();
  const auto labeler = [label_width](const nn::Tensor& xs) {
    return nn::Tensor({xs.dim(0), label_width});
  };
  // Warmup outside the timed window (first-touch costs).
  (void)service
      .submit(service::LabelRequest{w.query_pools[0].xs, 1e9, labeler})
      .get();
  const service::ServiceStats baseline = service.stats();

  std::vector<std::vector<OpTally>> tallies(
      preset.clients, std::vector<OpTally>(kOpCount));
  util::WallTimer wall;
  std::vector<std::thread> clients;
  clients.reserve(preset.clients);
  for (std::size_t c = 0; c < preset.clients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<OpTally>& my = tallies[c];
      for (const Txn& txn : w.scripts[c]) {
        OpTally& tally = my[static_cast<std::size_t>(txn.op)];
        util::WallTimer timer;
        switch (txn.op) {
          case Op::kIngest: {
            ds.ingest(w.ingest_batches[txn.arg].xs,
                      w.ingest_batches[txn.arg].ys, w.ingest_ids[txn.arg]);
            ++tally.submitted;
            ++tally.answered;
            tally.latencies.push_back(timer.seconds());
            break;
          }
          case Op::kLabel: {
            // Closed-loop with a per-transaction burst: `burst` futures in
            // flight, then drain. Latency is burst-start to that future's
            // response; shed responses return immediately and are tallied
            // apart so they cannot deflate the percentiles.
            std::vector<std::future<service::LabelResponse>> futures;
            futures.reserve(preset.burst);
            for (std::size_t b = 0; b < preset.burst; ++b) {
              futures.push_back(service.submit(service::LabelRequest{
                  w.query_pools[txn.arg].xs, 1e9, labeler}));
            }
            for (auto& f : futures) {
              const auto response = f.get();
              ++tally.submitted;
              if (response.status == service::ServeStatus::kOk) {
                ++tally.answered;
                tally.latencies.push_back(timer.seconds());
              } else {
                ++tally.shed;
              }
            }
            break;
          }
          case Op::kRank: {
            const auto response =
                service
                    .submit(service::RecommendRequest{
                        "braggnn", w.query_pools[txn.arg].xs})
                    .get();
            ++tally.submitted;
            if (response.status == service::ServeStatus::kOk) {
              ++tally.answered;
              tally.latencies.push_back(timer.seconds());
            } else {
              ++tally.shed;
            }
            break;
          }
          case Op::kPublish: {
            zoo.publish("braggnn", w.publish_ids[txn.arg],
                        w.publish_pdfs[txn.arg], w.publish_blobs[txn.arg]);
            ++tally.submitted;
            ++tally.answered;
            tally.latencies.push_back(timer.seconds());
            break;
          }
          case Op::kRetrain: {
            // answered = won the coalescing race (a check actually ran);
            // shed = coalesced into the in-flight check.
            const bool accepted =
                service.request_retrain(w.retrain_probes[txn.arg].xs);
            ++tally.submitted;
            if (accepted) {
              ++tally.answered;
              tally.latencies.push_back(timer.seconds());
            } else {
              ++tally.shed;
            }
            break;
          }
          case Op::kCount:
            break;
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  RunResult result;
  result.wall_seconds = wall.seconds();
  util::WallTimer drain;
  service.wait_idle();
  result.drain_seconds = drain.seconds();
  result.stats = service.stats();
  result.baseline = baseline;
  for (std::size_t c = 0; c < preset.clients; ++c) {
    for (std::size_t op = 0; op < kOpCount; ++op) {
      result.ops[op].merge(tallies[c][op]);
    }
  }
  return result;
}

void write_json(const char* path, const Preset& preset, std::size_t scale,
                const RunResult& r) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "mixed_workload: cannot open %s for writing\n",
                 path);
    std::exit(1);
  }
  std::uint64_t txns = 0;
  for (const auto& op : r.ops) txns += op.submitted;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"mixed_workload\",\n");
  std::fprintf(f, "  \"preset\": \"%s\",\n", preset.name);
  std::fprintf(f, "  \"scale\": %zu,\n", scale);
  std::fprintf(f, "  \"hw_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"clients\": %zu,\n", preset.clients);
  std::fprintf(f, "  \"workers\": %zu,\n", preset.workers);
  std::fprintf(f, "  \"max_pending\": %zu,\n", preset.max_pending);
  std::fprintf(f, "  \"burst\": %zu,\n", preset.burst);
  std::fprintf(f, "  \"wall_seconds\": %.6f,\n", r.wall_seconds);
  std::fprintf(f, "  \"drain_seconds\": %.6f,\n", r.drain_seconds);
  std::fprintf(f, "  \"txns\": %llu,\n",
               static_cast<unsigned long long>(txns));
  std::fprintf(f, "  \"tps\": %.2f,\n",
               static_cast<double>(txns) / r.wall_seconds);
  std::fprintf(f, "  \"ops\": {\n");
  for (std::size_t op = 0; op < kOpCount; ++op) {
    const OpTally& t = r.ops[op];
    std::fprintf(
        f,
        "    \"%s\": {\"submitted\": %llu, \"answered\": %llu, "
        "\"shed\": %llu, \"p50_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"p999_ms\": %.4f}%s\n",
        op_name(op), static_cast<unsigned long long>(t.submitted),
        static_cast<unsigned long long>(t.answered),
        static_cast<unsigned long long>(t.shed), pct_ms(t.latencies, 50),
        pct_ms(t.latencies, 99), pct_ms(t.latencies, 99.9),
        op + 1 < kOpCount ? "," : "");
  }
  std::fprintf(f, "  },\n");
  const service::ServiceStats& s = r.stats;
  std::fprintf(
      f,
      "  \"service_stats\": {\"label_requests\": %llu, "
      "\"label_answered\": %llu, \"label_shed\": %llu, "
      "\"recommend_requests\": %llu, \"recommend_answered\": %llu, "
      "\"recommend_shed\": %llu, \"queue_depth\": %llu, "
      "\"max_queue_depth\": %llu, \"retrain_checks\": %llu, "
      "\"retrains\": %llu, \"retrains_coalesced\": %llu}\n",
      static_cast<unsigned long long>(s.label_requests),
      static_cast<unsigned long long>(s.label_answered),
      static_cast<unsigned long long>(s.label_shed),
      static_cast<unsigned long long>(s.recommend_requests),
      static_cast<unsigned long long>(s.recommend_answered),
      static_cast<unsigned long long>(s.recommend_shed),
      static_cast<unsigned long long>(s.queue_depth),
      static_cast<unsigned long long>(s.max_queue_depth),
      static_cast<unsigned long long>(s.retrain_checks),
      static_cast<unsigned long long>(s.retrains),
      static_cast<unsigned long long>(s.retrains_coalesced));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("json report written to %s\n", path);
}

/// The graceful-degradation gate (CI saturation step). Returns the number
/// of violated invariants; prints each violation.
int check_graceful(const Preset& preset, const RunResult& r) {
  int violations = 0;
  const auto fail = [&violations](const char* what) {
    std::fprintf(stderr, "GRACEFUL-DEGRADATION VIOLATION: %s\n", what);
    ++violations;
  };
  const OpTally& label = r.ops[static_cast<std::size_t>(Op::kLabel)];
  const OpTally& rank = r.ops[static_cast<std::size_t>(Op::kRank)];
  // Shedding all user-plane traffic is not degradation, it is an outage.
  if (label.answered + rank.answered == 0) {
    fail("100% of user-plane traffic was shed");
  }
  const service::ServiceStats& s = r.stats;
  // The admission ledger must reconcile exactly once idle: every submit
  // was either answered or shed, nothing lost, nothing double-counted.
  if (s.label_requests != s.label_answered + s.label_shed) {
    fail("label_requests != label_answered + label_shed");
  }
  if (s.lookup_requests != s.lookup_answered + s.lookup_shed) {
    fail("lookup_requests != lookup_answered + lookup_shed");
  }
  if (s.recommend_requests != s.recommend_answered + s.recommend_shed) {
    fail("recommend_requests != recommend_answered + recommend_shed");
  }
  // Client-observed outcomes must agree with the service's ledger (deltas
  // against the post-warmup baseline: the warmup request is outside the
  // timed run but inside the service's lifetime counters).
  const service::ServiceStats& b = r.baseline;
  if (label.answered != s.label_answered - b.label_answered ||
      label.shed != s.label_shed - b.label_shed) {
    fail("client-observed label outcomes disagree with ServiceStats");
  }
  if (rank.answered != s.recommend_answered - b.recommend_answered ||
      rank.shed != s.recommend_shed - b.recommend_shed) {
    fail("client-observed rank outcomes disagree with ServiceStats");
  }
  if (s.queue_depth != 0) fail("pending queue did not drain after the run");
  if (preset.max_pending != 0 && s.max_queue_depth > preset.max_pending) {
    fail("pending queue grew beyond the configured bound");
  }
  return violations;
}

}  // namespace

int main(int argc, char** argv) {
  Preset preset = full_preset();
  const char* json_path = nullptr;
  bool require_graceful = false;
  std::size_t scale = 1;
  for (int i = 1; i < argc; ++i) {
    const auto pick = [&preset](const char* name) {
      if (std::strcmp(name, "small") == 0) preset = small_preset();
      else if (std::strcmp(name, "full") == 0) preset = full_preset();
      else if (std::strcmp(name, "saturate") == 0) preset = saturate_preset();
      else {
        std::fprintf(stderr, "unknown preset: %s\n", name);
        std::exit(2);
      }
    };
    if (std::strcmp(argv[i], "--preset") == 0 && i + 1 < argc) {
      pick(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--require-graceful") == 0) {
      require_graceful = true;
    } else if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc) {
      scale = std::max(1, std::atoi(argv[++i]));
    } else if (argv[i][0] != '-') {
      pick(argv[i]);
    } else {
      std::fprintf(stderr,
                   "usage: mixed_workload [--preset small|full|saturate] "
                   "[--scale N] [--json PATH] [--require-graceful]\n");
      return 2;
    }
  }
  preset.history *= scale;
  preset.txns_per_client *= scale;

  bench::print_header(
      "Mixed-workload transaction driver",
      std::string("closed-loop typed mix over one DataService (preset: ") +
          preset.name + ", scale: " + std::to_string(scale) +
          ", hw threads: " +
          std::to_string(std::thread::hardware_concurrency()) + ")");
  std::printf(
      "mix: ingest %zu%% / lookup_or_label %zu%% / rank %zu%% / "
      "publish %zu%% / retrain %zu%% — %zu clients x %zu txns, "
      "burst %zu, workers %zu, max_pending %zu\n",
      preset.weights.ingest, preset.weights.label, preset.weights.rank,
      preset.weights.publish, preset.weights.retrain, preset.clients,
      preset.txns_per_client, preset.burst, preset.workers,
      preset.max_pending);

  // --- untimed setup + workload precalculation ------------------------------
  const auto timeline = bench::standard_timeline(12, 7);
  const nn::Batchset history =
      timeline.dataset_at(2, preset.history, kSeed);
  store::DocStore db;
  fairds::FairDSConfig config;
  config.embedding_dim = 12;
  config.n_clusters = 8;
  config.embed_train.epochs = preset.embed_epochs;
  config.certainty_threshold = preset.certainty_threshold;
  config.seed = kSeed;
  config.store_shards = 4;
  fairds::FairDS ds(config, db);
  ds.train_system(head_rows(history.xs, preset.train_subset));
  ds.ingest(history.xs, history.ys, "history");

  fairms::ModelZoo zoo(db);
  // Seed the zoo so rank transactions have real candidates from txn one.
  for (std::size_t m = 0; m < 4; ++m) {
    zoo.publish("braggnn", "seed_" + std::to_string(m),
                ds.distribution(timeline.dataset_at(2 + m, 32, kSeed + m).xs),
                std::vector<std::uint8_t>(kPublishBlobBytes, 0x42));
  }
  fairms::ModelManager manager(zoo, 1.0);
  service::DataService service(
      ds,
      {.workers = preset.workers, .store_shards = 4,
       .max_pending = preset.max_pending},
      &manager);

  const Workload workload = build_workload(preset, timeline, ds);

  // --- timed run ------------------------------------------------------------
  const RunResult result = run_mix(preset, workload, ds, zoo, service);

  std::uint64_t txns = 0, user_answered = 0, user_shed = 0;
  for (std::size_t op = 0; op < kOpCount; ++op) {
    txns += result.ops[op].submitted;
  }
  user_answered = result.ops[1].answered + result.ops[2].answered;
  user_shed = result.ops[1].shed + result.ops[2].shed;

  bench::print_row("op", "submitted", "answered", "shed", "p50_ms",
                   "p99_ms", "p999_ms");
  for (std::size_t op = 0; op < kOpCount; ++op) {
    const OpTally& t = result.ops[op];
    bench::print_row(op_name(op), t.submitted, t.answered, t.shed,
                     pct_ms(t.latencies, 50), pct_ms(t.latencies, 99),
                     pct_ms(t.latencies, 99.9));
  }
  std::printf(
      "wall %.3fs, %.0f txns/s; user plane answered %llu / shed %llu; "
      "retrain checks %llu (%llu trained, %llu coalesced); queue high-water "
      "%llu of %zu; drain %.3fs\n",
      result.wall_seconds,
      static_cast<double>(txns) / result.wall_seconds,
      static_cast<unsigned long long>(user_answered),
      static_cast<unsigned long long>(user_shed),
      static_cast<unsigned long long>(result.stats.retrain_checks),
      static_cast<unsigned long long>(result.stats.retrains),
      static_cast<unsigned long long>(result.stats.retrains_coalesced),
      static_cast<unsigned long long>(result.stats.max_queue_depth),
      preset.max_pending, result.drain_seconds);

  if (json_path != nullptr) write_json(json_path, preset, scale, result);

  int violations = 0;
  if (require_graceful) {
    violations = check_graceful(preset, result);
    std::printf("graceful-degradation gate: %s\n",
                violations == 0 ? "PASS" : "FAIL");
  }

  bench::print_footer(
      "under the paper's mixed beamline traffic the service degrades by "
      "policy, not by accident: at saturation the bounded queue sheds with "
      "an explicit status while admitted requests keep completing, and the "
      "admission ledger reconciles exactly once the queue drains");
  return violations == 0 ? 0 : 1;
}
