// Microbenchmarks: document-store primitives — insert, point lookup,
// indexed vs scanned equality queries (the paper's §II-A requirement ii:
// "efficient data lookup by using embedding indexing"), and concurrent
// ingest on sharded vs unsharded collections (the detector-rate parallel
// write path).
#include <benchmark/benchmark.h>

#include <cstddef>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "store/docstore.hpp"
#include "util/rng.hpp"

namespace {

using namespace fairdms;

store::Value sample_doc(std::int64_t cluster, util::Rng& rng) {
  store::Object doc;
  doc["cluster"] = store::Value(cluster);
  store::Binary blob(900);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  doc["x"] = store::Value(std::move(blob));
  return store::Value(std::move(doc));
}

void BM_InsertOne(benchmark::State& state) {
  store::DocStore db;
  auto& col = db.collection("bench");
  col.create_index("cluster");
  util::Rng rng(1);
  std::int64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(col.insert_one(sample_doc(c++ % 16, rng)));
  }
}

void BM_FindById(benchmark::State& state) {
  store::DocStore db;
  auto& col = db.collection("bench");
  util::Rng rng(2);
  std::vector<store::DocId> ids;
  for (int i = 0; i < 4096; ++i) {
    ids.push_back(col.insert_one(sample_doc(i % 16, rng)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(col.find_by_id(ids[i++ % ids.size()]));
  }
}

void BM_FindEq(benchmark::State& state) {
  const bool indexed = state.range(0) != 0;
  store::DocStore db;
  auto& col = db.collection("bench");
  if (indexed) col.create_index("cluster");
  util::Rng rng(3);
  for (int i = 0; i < 4096; ++i) {
    col.insert_one(sample_doc(i % 16, rng));
  }
  std::int64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(col.find_eq("cluster", store::Value(c++ % 16)));
  }
  state.SetLabel(indexed ? "indexed" : "collection-scan");
}

// Concurrent ingest: `threads` writers each insert_one a fixed document
// count into one collection with `shards` sub-stores. With one shard every
// writer queues on the collection's single exclusive lock; with several,
// the atomic id allocator round-robins writers across independent shard
// locks. Wall time (UseRealTime) over the whole parallel phase.
void BM_ConcurrentIngest(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  const auto shards = static_cast<std::size_t>(state.range(1));
  constexpr std::size_t kDocsPerThread = 1024;
  for (auto _ : state) {
    state.PauseTiming();
    auto col = std::make_unique<store::Collection>("bench", nullptr, shards);
    std::vector<std::vector<store::Value>> docs(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      util::Rng rng(100 + t);
      docs[t].reserve(kDocsPerThread);
      for (std::size_t i = 0; i < kDocsPerThread; ++i) {
        docs[t].push_back(sample_doc(static_cast<std::int64_t>(i % 16), rng));
      }
    }
    state.ResumeTiming();
    std::vector<std::thread> writers;
    writers.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) {
      writers.emplace_back([&col, &docs, t] {
        for (store::Value& doc : docs[t]) {
          benchmark::DoNotOptimize(col->insert_one(std::move(doc)));
        }
      });
    }
    for (auto& w : writers) w.join();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(
      state.iterations() * threads * kDocsPerThread));
  state.SetLabel(shards == 1 ? "unsharded" : "sharded");
}

}  // namespace

BENCHMARK(BM_InsertOne);
BENCHMARK(BM_FindById);
BENCHMARK(BM_FindEq)->Arg(0)->Arg(1);
BENCHMARK(BM_ConcurrentIngest)
    ->ArgNames({"threads", "shards"})
    ->Args({1, 1})
    ->Args({1, 8})
    ->Args({2, 1})
    ->Args({2, 8})
    ->Args({4, 1})
    ->Args({4, 8})
    ->Args({8, 1})
    ->Args({8, 8})
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
