// Microbenchmarks: document-store primitives — insert, point lookup,
// indexed vs scanned equality queries (the paper's §II-A requirement ii:
// "efficient data lookup by using embedding indexing").
#include <benchmark/benchmark.h>
#include <vector>

#include "store/docstore.hpp"
#include "util/rng.hpp"

namespace {

using namespace fairdms;

store::Value sample_doc(std::int64_t cluster, util::Rng& rng) {
  store::Object doc;
  doc["cluster"] = store::Value(cluster);
  store::Binary blob(900);
  for (auto& b : blob) b = static_cast<std::uint8_t>(rng.uniform_index(256));
  doc["x"] = store::Value(std::move(blob));
  return store::Value(std::move(doc));
}

void BM_InsertOne(benchmark::State& state) {
  store::DocStore db;
  auto& col = db.collection("bench");
  col.create_index("cluster");
  util::Rng rng(1);
  std::int64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(col.insert_one(sample_doc(c++ % 16, rng)));
  }
}

void BM_FindById(benchmark::State& state) {
  store::DocStore db;
  auto& col = db.collection("bench");
  util::Rng rng(2);
  std::vector<store::DocId> ids;
  for (int i = 0; i < 4096; ++i) {
    ids.push_back(col.insert_one(sample_doc(i % 16, rng)));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(col.find_by_id(ids[i++ % ids.size()]));
  }
}

void BM_FindEq(benchmark::State& state) {
  const bool indexed = state.range(0) != 0;
  store::DocStore db;
  auto& col = db.collection("bench");
  if (indexed) col.create_index("cluster");
  util::Rng rng(3);
  for (int i = 0; i < 4096; ++i) {
    col.insert_one(sample_doc(i % 16, rng));
  }
  std::int64_t c = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(col.find_eq("cluster", store::Value(c++ % 16)));
  }
  state.SetLabel(indexed ? "indexed" : "collection-scan");
}

}  // namespace

BENCHMARK(BM_InsertOne);
BENCHMARK(BM_FindById);
BENCHMARK(BM_FindEq)->Arg(0)->Arg(1);

BENCHMARK_MAIN();
