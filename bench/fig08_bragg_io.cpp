// Figure 8: BraggPeaks dataset storage sweep. Tiny samples, huge counts:
// the workload is latency-bound, so direct NFS reads beat MongoDB (whose
// per-document fetch costs two round trips) on epoch time, while extra
// workers claw back most of the Mongo gap (the paper's conclusion).
#include "datagen/bragg.hpp"
#include "io_common.hpp"
#include "util/rng.hpp"

namespace {
constexpr std::size_t kSamples = 2048;  // paper: 1.87M patches (scaled)
constexpr std::uint64_t kSeed = 808;
}  // namespace

int main() {
  using namespace fairdms;
  util::Rng rng(kSeed);
  datagen::BraggRegime regime;

  bench::IoBenchSpec spec;
  spec.figure = "Fig. 8";
  spec.title = "BraggPeaks dataset: storage backend vs training I/O";
  spec.data = datagen::make_bragg_batchset(regime, {}, kSamples, rng);
  spec.model_factory = [] { return models::make_braggnn(kSeed); };
  spec.batch_sizes = {32, 64, 128, 256};  // paper: 64..1024
  spec.worker_counts = {1, 2, 4, 8, 16};  // paper: 1..100
  spec.io_batch = 128;
  spec.nfs_root = "/tmp/fairdms_bench_fig08";
  bench::run_io_bench(std::move(spec));

  bench::print_footer(
      "many tiny samples: per-fetch latency dominates, NFS wins epoch time; "
      "Mongo catches up as workers overlap round trips — prefetch to local "
      "storage before training, keep Mongo for management");
  return 0;
}
