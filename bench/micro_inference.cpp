// Microbenchmark: BraggNN inference vs conventional pseudo-Voigt fitting,
// per peak — the paper's §III-A claim that BraggNN localizes a center of
// mass ~200x faster than pseudo-Voigt fitting. Also k-means assignment and
// the GEMM kernel, the two hot loops behind fairDS queries.
#include <benchmark/benchmark.h>

#include "cluster/kmeans.hpp"
#include "datagen/bragg.hpp"
#include "labeling/voigt_fit.hpp"
#include "models/models.hpp"
#include "tensor/tensor.hpp"
#include "util/rng.hpp"

namespace {

using namespace fairdms;

void BM_BraggNNInferencePerPeak(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(1);
  datagen::BraggRegime regime;
  const auto data = datagen::make_bragg_batchset(regime, {}, batch, rng);
  auto model = models::make_braggnn(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.net.forward(data.xs, nn::Mode::kEval).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}

void BM_PseudoVoigtFitPerPeak(benchmark::State& state) {
  util::Rng rng(2);
  datagen::BraggRegime regime;
  const auto data = datagen::make_bragg_batchset(regime, {}, 16, rng);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::span<const float> patch(data.xs.data() + (i++ % 16) * 225,
                                       225);
    benchmark::DoNotOptimize(labeling::fit_peak(patch, 15));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_KMeansAssignBatch(benchmark::State& state) {
  util::Rng rng(3);
  const auto xs = tensor::Tensor::randn({1024, 16}, rng);
  cluster::KMeansConfig config;
  config.k = 15;
  const auto model = cluster::kmeans_fit(xs, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.assign_batch(xs));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1024);
}

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(4);
  const auto a = tensor::Tensor::randn({n, n}, rng);
  const auto b = tensor::Tensor::randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tensor::matmul(a, b).data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n * n * n));
}

}  // namespace

BENCHMARK(BM_BraggNNInferencePerPeak)->Arg(64)->Arg(256);
BENCHMARK(BM_PseudoVoigtFitPerPeak);
BENCHMARK(BM_KMeansAssignBatch);
BENCHMARK(BM_Matmul)->Arg(64)->Arg(256);

BENCHMARK_MAIN();
