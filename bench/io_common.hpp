// Shared harness for the storage-system figures (Figs. 6, 7, 8).
//
// Reproduces both panels per dataset:
//  (a) training epoch time vs batch size, for MongoDB+Blosc, MongoDB+Pickle
//      and NFS storage (remote link modeled in both cases);
//  (b) I/O wall-time per iteration vs DataLoader worker count (fetch-only
//      drain: what the training loop would wait on without prefetch overlap).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "models/models.hpp"
#include "nn/loss.hpp"
#include "nn/optim.hpp"
#include "store/dataloader.hpp"
#include "util/timer.hpp"

namespace fairdms::bench {

struct IoBenchSpec {
  std::string figure;
  std::string title;
  nn::Batchset data;
  std::function<models::TaskModel()> model_factory;
  std::vector<std::size_t> batch_sizes;   ///< epoch-time sweep (panel a)
  std::vector<std::size_t> worker_counts; ///< I/O sweep (panel b)
  std::size_t epoch_workers = 4;          ///< paper: 50 I/O threads
  std::size_t io_batch = 32;              ///< paper: fixed batch 512
  std::string nfs_root;
};

inline store::RemoteLinkConfig remote_100gbe() {
  // 100 GbE with RPC overhead: ~120us round trip, ~50 Gb/s effective.
  return store::RemoteLinkConfig{.latency_seconds = 120e-6,
                                 .bandwidth_bytes_per_s = 6e9};
}

struct StorageSetup {
  std::string name;
  std::unique_ptr<store::DocStore> db;      // null for NFS
  std::unique_ptr<store::NfsStore> nfs;     // null for Mongo
  std::unique_ptr<store::Dataset> dataset;
};

inline std::vector<StorageSetup> build_storages(const IoBenchSpec& spec) {
  std::vector<StorageSetup> out;
  for (const char* codec : {"blosc", "pickle"}) {
    StorageSetup s;
    s.name = std::string("Mongo+") + codec;
    s.db = std::make_unique<store::DocStore>(remote_100gbe());
    s.dataset =
        store::MongoDataset::ingest(s.db->collection("train"), spec.data,
                                    codec);
    out.push_back(std::move(s));
  }
  StorageSetup nfs;
  nfs.name = "NFS";
  nfs.nfs = std::make_unique<store::NfsStore>(spec.nfs_root, remote_100gbe());
  nfs.nfs->write_dataset("train", spec.data);
  nfs.dataset = std::make_unique<store::NfsDataset>(*nfs.nfs, "train");
  out.push_back(std::move(nfs));
  return out;
}

/// One training epoch through the DataLoader; returns wall seconds.
inline double train_epoch(store::Dataset& dataset, models::TaskModel& model,
                          std::size_t batch_size, std::size_t workers,
                          double* stall_seconds = nullptr) {
  store::LoaderConfig config;
  config.batch_size = batch_size;
  config.workers = workers;
  config.prefetch_batches = 4;
  config.seed = 7;
  store::DataLoader loader(dataset, config);
  nn::Adam opt(model.net, 1e-3);

  util::WallTimer timer;
  loader.start_epoch(0);
  while (auto batch = loader.next()) {
    opt.zero_grad();
    const nn::Tensor pred = model.net.forward(batch->xs, nn::Mode::kTrain);
    const nn::LossResult loss = nn::mse_loss(pred, batch->ys);
    model.net.backward(loss.grad);
    opt.step();
  }
  if (stall_seconds != nullptr) *stall_seconds = loader.stall_seconds();
  return timer.seconds();
}

/// Fetch-only drain; returns wall milliseconds per iteration.
inline double drain_ms_per_iter(store::Dataset& dataset,
                                std::size_t batch_size, std::size_t workers) {
  store::LoaderConfig config;
  config.batch_size = batch_size;
  config.workers = workers;
  config.prefetch_batches = 4;
  config.seed = 7;
  store::DataLoader loader(dataset, config);
  util::WallTimer timer;
  loader.start_epoch(0);
  std::size_t iters = 0;
  while (loader.next()) ++iters;
  return timer.millis() / static_cast<double>(iters == 0 ? 1 : iters);
}

inline void run_io_bench(IoBenchSpec spec) {
  print_header(spec.figure, spec.title);
  auto storages = build_storages(spec);
  const std::size_t n = spec.data.size();
  std::size_t sample_bytes = 4;
  for (std::size_t a = 1; a < spec.data.xs.rank(); ++a) {
    sample_bytes *= spec.data.xs.dim(a);
  }
  std::printf("samples=%zu  bytes/sample=%zu  (remote link: 120us RTT, "
              "~50Gb/s)\n\n",
              n, sample_bytes);

  std::printf("(a) training epoch time [s] vs batch size (%zu workers)\n",
              spec.epoch_workers);
  print_row("batch", "Mongo+blosc", "Mongo+pickle", "NFS");
  for (std::size_t batch : spec.batch_sizes) {
    std::vector<double> times;
    for (auto& storage : storages) {
      auto model = spec.model_factory();
      times.push_back(train_epoch(*storage.dataset, model, batch,
                                  spec.epoch_workers));
    }
    print_row(batch, times[0], times[1], times[2]);
  }

  std::printf("\n(b) I/O wall time [ms] per iteration vs workers "
              "(batch %zu, fetch-only)\n",
              spec.io_batch);
  print_row("workers", "Mongo+blosc", "Mongo+pickle", "NFS");
  for (std::size_t workers : spec.worker_counts) {
    std::vector<double> times;
    for (auto& storage : storages) {
      times.push_back(
          drain_ms_per_iter(*storage.dataset, spec.io_batch, workers));
    }
    print_row(workers, times[0], times[1], times[2]);
  }
}

}  // namespace fairdms::bench
